// Package paleo reimplements the behaviour of Paleo (Qi et al., ICLR'17),
// the analytical-modeling baseline of the paper's Fig. 13: it estimates
// training time for every deployment from first principles — FLOP counts
// over device peak throughput with a generic utilization factor, plus an
// idealized bandwidth-only communication term — and picks a deployment
// with zero profiling cost.
//
// Its failure mode, which the paper highlights, is baked in faithfully:
// the analytical model knows nothing about model-specific accelerator
// utilization, incast contention, stragglers, or framework overheads
// ("nuances like communication topology"), so its estimates diverge from
// reality exactly where clusters get big or models utilize hardware
// unusually.
package paleo

import (
	"fmt"
	"math"
	"time"

	"mlcd/internal/cloud"
	"mlcd/internal/profiler"
	"mlcd/internal/search"
	"mlcd/internal/workload"
)

// Utilization factors Paleo assumes uniformly, regardless of model
// architecture — the crux of its inaccuracy.
const (
	cpuUtil = 0.75
	gpuUtil = 0.40
)

// Estimator is Paleo's analytical performance model.
type Estimator struct{}

// Throughput estimates samples/second for job j on deployment d.
func (Estimator) Throughput(j workload.Job, d cloud.Deployment) float64 {
	n := float64(d.Nodes)
	var gflops float64
	if d.Type.IsGPU() {
		gflops = d.Type.GPUGFLOPS * float64(d.Type.GPUs) * gpuUtil
	} else {
		gflops = d.Type.CPUGFLOPS * cpuUtil
	}
	perNodeBatch := float64(j.GlobalBatch) / n
	tComp := perNodeBatch * j.Model.TrainFLOPsPerSample / (gflops * 1e9)

	// Idealized communication: pure bandwidth, no contention, no
	// latency, no stragglers, no overlap modeling.
	var tComm float64
	if d.Nodes > 1 {
		g := j.Model.GradientBytes()
		bw := d.Type.NetworkGbps * 1e9 / 8
		switch j.Topology {
		case workload.RingAllReduce:
			tComm = 2 * g * (n - 1) / (n * bw)
		default:
			tComm = 2 * g / bw
		}
	}
	return float64(j.GlobalBatch) / (tComp + tComm)
}

// TrainTime estimates end-to-end training time on d.
func (e Estimator) TrainTime(j workload.Job, d cloud.Deployment) time.Duration {
	return time.Duration(j.TotalSamples() / e.Throughput(j, d) * float64(time.Second))
}

// TrainCost estimates end-to-end training cost on d.
func (e Estimator) TrainCost(j workload.Job, d cloud.Deployment) float64 {
	return d.CostFor(e.TrainTime(j, d))
}

// Searcher picks deployments purely from the analytical model.
type Searcher struct {
	est Estimator
}

// New returns the Paleo baseline searcher.
func New() *Searcher { return &Searcher{} }

// Name implements search.Searcher.
func (s *Searcher) Name() string { return "paleo" }

// Search implements search.Searcher. It never profiles (prof is unused),
// so ProfileTime and ProfileCost are zero — analytical modeling's one
// genuine advantage, which the paper's Fig. 13 preserves.
func (s *Searcher) Search(j workload.Job, space *cloud.Space, scen search.Scenario, cons search.Constraints, _ profiler.Profiler) (search.Outcome, error) {
	if err := cons.Validate(scen); err != nil {
		return search.Outcome{}, err
	}
	if err := j.Validate(); err != nil {
		return search.Outcome{}, err
	}
	if space.Len() == 0 {
		return search.Outcome{}, fmt.Errorf("paleo: empty deployment space")
	}
	bestVal := math.Inf(1)
	var best cloud.Deployment
	found := false
	for i := 0; i < space.Len(); i++ {
		d := space.At(i)
		estT := s.est.TrainTime(j, d)
		estC := s.est.TrainCost(j, d)
		var feasible bool
		var val float64
		switch scen {
		case search.CheapestWithDeadline:
			feasible = estT <= cons.Deadline
			val = estC
		case search.FastestWithBudget:
			feasible = estC <= cons.Budget
			val = estT.Seconds()
		default:
			feasible = true
			val = estT.Seconds()
		}
		if feasible && val < bestVal {
			bestVal = val
			best = d
			found = true
		}
	}
	if !found {
		// Fall back to the unconstrained optimum so callers always get
		// a deployment to evaluate.
		for i := 0; i < space.Len(); i++ {
			d := space.At(i)
			if v := s.est.TrainTime(j, d).Seconds(); v < bestVal {
				bestVal = v
				best = d
			}
		}
	}
	return search.Outcome{
		Searcher: s.Name(), Job: j, Scenario: scen, Constraints: cons,
		Best:           best,
		BestThroughput: s.est.Throughput(j, best), // estimated, not measured
		Found:          found,
		Stopped:        "analytical model evaluated",
	}, nil
}
