package paleo

import (
	"testing"
	"time"

	"mlcd/internal/cloud"
	"mlcd/internal/search"
	"mlcd/internal/sim"
	"mlcd/internal/workload"
)

var (
	cat       = cloud.DefaultCatalog()
	fullSpace = cloud.NewSpace(cat, cloud.DefaultLimits)
)

func TestEstimatorBasicShape(t *testing.T) {
	var e Estimator
	j := workload.ResNetCIFAR10
	one := cloud.NewDeployment(cat.MustLookup("c5.4xlarge"), 1)
	ten := cloud.NewDeployment(cat.MustLookup("c5.4xlarge"), 10)
	if e.Throughput(j, ten) <= e.Throughput(j, one) {
		t.Fatal("analytical model must predict scale-out speedup")
	}
	if e.TrainTime(j, ten) >= e.TrainTime(j, one) {
		t.Fatal("faster deployment must train sooner")
	}
	if e.TrainCost(j, one) <= 0 {
		t.Fatal("cost must be positive")
	}
}

func TestEstimatorIsOptimisticAtScale(t *testing.T) {
	// The designed-in failure mode (Fig. 13): without contention and
	// stragglers, Paleo's estimate increasingly exceeds reality as the
	// cluster grows.
	var e Estimator
	s := sim.New(1)
	j := workload.ResNetCIFAR10
	small := cloud.NewDeployment(cat.MustLookup("c5.4xlarge"), 2)
	big := cloud.NewDeployment(cat.MustLookup("c5.4xlarge"), 80)
	ratioSmall := e.Throughput(j, small) / s.Throughput(j, small)
	ratioBig := e.Throughput(j, big) / s.Throughput(j, big)
	if ratioBig <= ratioSmall {
		t.Fatalf("optimism must grow with scale: %v vs %v", ratioBig, ratioSmall)
	}
	if ratioBig < 1.2 {
		t.Fatalf("Paleo at n=80 should be clearly optimistic, ratio %v", ratioBig)
	}
}

func TestEstimatorMissesModelSpecificUtilization(t *testing.T) {
	// Paleo assumes generic GPU utilization; for the CIFAR ResNet the
	// true utilization is far lower, so Paleo overrates GPUs.
	var e Estimator
	s := sim.New(1)
	j := workload.ResNetCIFAR10
	gpu := cloud.NewDeployment(cat.MustLookup("p3.2xlarge"), 1)
	if e.Throughput(j, gpu) < 3*s.Throughput(j, gpu) {
		t.Fatalf("Paleo should overrate GPUs for CIFAR CNNs: est %v vs true %v",
			e.Throughput(j, gpu), s.Throughput(j, gpu))
	}
}

func TestSearcherHasZeroProfilingCost(t *testing.T) {
	out, err := New().Search(workload.InceptionImageNet, fullSpace, search.FastestWithBudget, search.Constraints{Budget: 80}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.ProfileCost != 0 || out.ProfileTime != 0 || len(out.Steps) != 0 {
		t.Fatal("Paleo must not profile")
	}
	if out.Best.Nodes == 0 {
		t.Fatal("Paleo must pick a deployment")
	}
}

func TestSearcherRespectsEstimatedConstraints(t *testing.T) {
	var e Estimator
	j := workload.InceptionImageNet
	cons := search.Constraints{Budget: 80}
	out, err := New().Search(j, fullSpace, search.FastestWithBudget, cons, nil)
	if err != nil {
		t.Fatal(err)
	}
	if est := e.TrainCost(j, out.Best); est > cons.Budget {
		t.Fatalf("Paleo's own estimate ($%.2f) must fit its budget", est)
	}
}

func TestSearcherMissesTrueOptimumAtScale(t *testing.T) {
	// The punchline of Fig. 13: the deployment Paleo picks is measurably
	// slower or pricier than the true optimum once nuances matter.
	s := sim.New(1)
	j := workload.InceptionImageNet
	out, err := New().Search(j, fullSpace, search.FastestUnlimited, search.Constraints{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, opt := s.FastestDeployment(j, fullSpace)
	if got := s.TrainTime(j, out.Best); got.Seconds() <= opt.Seconds()*1.01 {
		t.Fatalf("Paleo landed on the true optimum (%v) — its failure mode is gone", out.Best)
	}
}

func TestSearcherScenarios(t *testing.T) {
	j := workload.ResNetCIFAR10
	if _, err := New().Search(j, fullSpace, search.CheapestWithDeadline, search.Constraints{Deadline: 10 * time.Hour}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := New().Search(j, fullSpace, search.FastestWithBudget, search.Constraints{}, nil); err == nil {
		t.Fatal("missing budget must error")
	}
	if _, err := New().Search(workload.Job{}, fullSpace, search.FastestUnlimited, search.Constraints{}, nil); err == nil {
		t.Fatal("invalid job must error")
	}
	if _, err := New().Search(j, cloud.NewSpaceFrom(nil), search.FastestUnlimited, search.Constraints{}, nil); err == nil {
		t.Fatal("empty space must error")
	}
}

func TestSearcherFallsBackWhenNothingFits(t *testing.T) {
	// A $0.01 budget admits nothing; Paleo must still return its
	// unconstrained pick with Found=false.
	out, err := New().Search(workload.ResNetCIFAR10, fullSpace, search.FastestWithBudget, search.Constraints{Budget: 0.01}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Found {
		t.Fatal("nothing fits $0.01")
	}
	if out.Best.Nodes == 0 {
		t.Fatal("fallback pick missing")
	}
}
