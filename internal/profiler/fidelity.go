package profiler

import (
	"time"

	"mlcd/internal/cloud"
	"mlcd/internal/stats"
	"mlcd/internal/workload"
)

// Multi-fidelity probing (TrimTuner-style sub-sampling): a probe at
// fidelity f ∈ (0, 1) runs a short burst instead of the full profiling
// protocol. It charges roughly f of the full Eq. 7 time — the fixed
// setup floor is unavoidable — and returns a noisier, downward-biased
// throughput estimate (short bursts over-weight warm-up and cold
// caches; internal/sim owns the deterministic gap model). Fidelity 1 is
// the paper's full probe, bit for bit.

// SetupFloor is the irreducible part of a probe: cluster setup and the
// first moments of warm-up cannot be sub-sampled away. It matches the
// OOM-crash horizon — by then the job is visibly running (or dead).
const SetupFloor = 2 * time.Minute

// MinFidelity is the lowest fraction of a probe that still yields any
// throughput signal; requests below it are clamped up.
const MinFidelity = 0.05

// Fid normalizes a fidelity value: zero (the unset field default) and
// anything ≥ 1 mean a full-fidelity probe.
func Fid(f float64) float64 {
	if f <= 0 || f >= 1 {
		return 1
	}
	return f
}

// DurationAt is Eq. 7 at fidelity f: the setup floor plus f of the
// sub-sampleable remainder. DurationAt(n, 1) == Duration(n) exactly.
func DurationAt(nodes int, f float64) time.Duration {
	full := Duration(nodes)
	f = Fid(f)
	if f >= 1 {
		return full
	}
	if f < MinFidelity {
		f = MinFidelity
	}
	return SetupFloor + time.Duration(f*float64(full-SetupFloor))
}

// CostAt is Eq. 8 at fidelity f: C_profile = P(m) · n · DurationAt.
// CostAt(d, 1) == Cost(d) exactly.
func CostAt(d cloud.Deployment, f float64) float64 {
	return d.CostFor(DurationAt(d.Nodes, f))
}

// FidelityProfiler is a Profiler that can run sub-sampled probes. The
// search only offers its fidelity ladder when the profiler implements
// this; everything else stays on full probes.
type FidelityProfiler interface {
	Profiler
	// ProfileAt measures d with a burst of fidelity f ∈ (0, 1]; f ≥ 1
	// must be identical to Profile. The Result's Fidelity field reports
	// what was actually delivered (0 = full).
	ProfileAt(j workload.Job, d cloud.Deployment, f float64) Result
}

// ProbeAt profiles d at fidelity f through p, falling back to a plain
// full-price probe when p cannot run partial ones. Callers must trust
// the returned Result's Fidelity (not the requested f) when deciding
// how to treat the measurement.
func ProbeAt(p Profiler, j workload.Job, d cloud.Deployment, f float64) Result {
	if Fid(f) < 1 {
		if fp, ok := p.(FidelityProfiler); ok {
			return fp.ProfileAt(j, d, f)
		}
	}
	return p.Profile(j, d)
}

// lowFidelityIters is the burst's measurement count: two iterations. The
// burst is too short for the stability-extension protocol — the gap
// model and the search's promotion discipline own the extra variance.
const lowFidelityIters = 2

// ProfileAt implements FidelityProfiler on the simulator-backed
// profiler: a short burst billed at DurationAt, measured through the
// simulator's biased sub-sampled mode. OOM crashes are fidelity-
// independent (the job dies during model build) and are billed exactly
// like a full probe's OOM.
func (p *SimProfiler) ProfileAt(j workload.Job, d cloud.Deployment, f float64) Result {
	f = Fid(f)
	if f >= 1 {
		return p.Profile(j, d)
	}
	if f < MinFidelity {
		f = MinFidelity
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	key := j.String() + "|" + d.Key()
	if first := p.sim.MeasureThroughputAt(j, d, p.trials[key], f); first <= 0 {
		p.trials[key]++
		return Result{
			Deployment: d,
			Throughput: 0,
			Duration:   OOMFailDuration,
			Cost:       d.CostFor(OOMFailDuration),
			Trials:     1,
			Fidelity:   f,
		}
	}
	meas := make([]float64, 0, lowFidelityIters)
	for i := 0; i < lowFidelityIters; i++ {
		meas = append(meas, p.sim.MeasureThroughputAt(j, d, p.trials[key], f))
		p.trials[key]++
	}
	dur := DurationAt(d.Nodes, f)
	return Result{
		Deployment: d,
		Throughput: stats.Mean(meas),
		Duration:   dur,
		Cost:       d.CostFor(dur),
		Trials:     len(meas),
		Fidelity:   f,
	}
}

// ProfileAt implements FidelityProfiler on the meter, accumulating the
// totals exactly like Profile does.
func (m *Meter) ProfileAt(j workload.Job, d cloud.Deployment, f float64) Result {
	r := ProbeAt(m.inner, j, d, f)
	m.Time += r.Duration
	m.Spend += r.Cost
	m.Probes++
	m.History = append(m.History, r)
	return r
}
