package profiler

import (
	"testing"
	"time"

	"mlcd/internal/cloud"
	"mlcd/internal/sim"
	"mlcd/internal/workload"
)

func fidDeployment(t *testing.T, typeName string, nodes int) cloud.Deployment {
	t.Helper()
	it, ok := cloud.DefaultCatalog().Lookup(typeName)
	if !ok {
		t.Fatalf("no catalog type %q", typeName)
	}
	return cloud.Deployment{Type: it, Nodes: nodes}
}

// TestDurationAtHandComputed pins Eq. 7 at fidelity f against hand
// arithmetic: DurationAt = floor + f·(Duration − floor), exactly full
// at f ≥ 1 and clamped at MinFidelity below the floor.
func TestDurationAtHandComputed(t *testing.T) {
	cases := []struct {
		nodes int
		f     float64
		want  time.Duration
	}{
		// 4 nodes: full probe 10 + ⌊3/3⌋ = 11 min.
		{4, 1.0, 11 * time.Minute},
		// f = 0.5: 2 + 0.5·(11−2) = 6.5 min.
		{4, 0.5, 6*time.Minute + 30*time.Second},
		// f = 0.1: 2 + 0.9 = 2.9 min.
		{4, 0.1, 2*time.Minute + 54*time.Second},
		// 1 node: full 10 min; f = 0.5 → 2 + 4 = 6 min.
		{1, 0.5, 6 * time.Minute},
		// Below the clamp floor: requested 0.01 runs at MinFidelity 0.05:
		// 2 + 0.05·8 = 2.4 min.
		{1, 0.01, 2*time.Minute + 24*time.Second},
		// Zero and ≥1 both mean full.
		{7, 0, 12 * time.Minute},
		{7, 1.5, 12 * time.Minute},
	}
	for _, c := range cases {
		if got := DurationAt(c.nodes, c.f); got != c.want {
			t.Errorf("DurationAt(%d, %v) = %v, want %v", c.nodes, c.f, got, c.want)
		}
	}
}

// TestCostAtHandComputed pins Eq. 8 at fidelity f: the deployment's
// hourly rate times the sub-sampled duration, exact at f = 1.
func TestCostAtHandComputed(t *testing.T) {
	d := fidDeployment(t, "c5.xlarge", 4) // $0.170/h/node · 4 = $0.68/h
	if got, want := CostAt(d, 1), Cost(d); got != want {
		t.Fatalf("CostAt(d, 1) = %v, want Cost(d) = %v", got, want)
	}
	// 6.5 min at $0.68/h = 0.68·6.5/60.
	want := 0.68 * 6.5 / 60
	if got := CostAt(d, 0.5); !close(got, want, 1e-9) {
		t.Fatalf("CostAt(d, 0.5) = %.9f, want %.9f", got, want)
	}
}

func close(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

// TestProfileAtFullDelegates proves the byte-identity anchor at the
// profiler layer: ProfileAt at f ≥ 1 is the classic Profile call — same
// trial stream, same Result, Fidelity unset.
func TestProfileAtFullDelegates(t *testing.T) {
	d := fidDeployment(t, "c5.xlarge", 2)
	j := workload.ResNetCIFAR10
	a := NewSimProfiler(sim.New(11))
	b := NewSimProfiler(sim.New(11))
	ra := a.Profile(j, d)
	rb := b.ProfileAt(j, d, 1)
	if ra != rb {
		t.Fatalf("ProfileAt(f=1) = %+v, want Profile result %+v", rb, ra)
	}
	if rb.Fidelity != 0 {
		t.Fatalf("full probe carries fidelity %v, want unset", rb.Fidelity)
	}
}

// TestProfileAtLowFidelity checks the sub-sampled contract: the burst
// bills DurationAt exactly, reads below the full-fidelity ground truth
// on average (the gap model), and reports its delivered fidelity.
func TestProfileAtLowFidelity(t *testing.T) {
	d := fidDeployment(t, "c5.xlarge", 4)
	j := workload.ResNetCIFAR10
	s := sim.New(3)
	p := NewSimProfiler(s)
	r := p.ProfileAt(j, d, 0.5)
	if r.Fidelity != 0.5 {
		t.Fatalf("delivered fidelity %v, want 0.5", r.Fidelity)
	}
	if want := DurationAt(4, 0.5); r.Duration != want {
		t.Fatalf("billed %v, want %v", r.Duration, want)
	}
	if want := d.CostFor(DurationAt(4, 0.5)); !close(r.Cost, want, 1e-9) {
		t.Fatalf("billed $%.9f, want $%.9f", r.Cost, want)
	}
	if r.Trials != lowFidelityIters {
		t.Fatalf("burst took %d trials, want %d", r.Trials, lowFidelityIters)
	}
	if r.Throughput <= 0 {
		t.Fatal("feasible deployment read zero at low fidelity")
	}
	// The deterministic bias: the expected low reading sits below truth.
	if full, low := s.Throughput(j, d), s.ThroughputAt(j, d, 0.5); low >= full {
		t.Fatalf("sub-sampled expectation %.3f not below ground truth %.3f", low, full)
	}
}

// TestProfileAtOOM: an infeasible deployment crashes during model build
// regardless of burst length and is billed the short OOM abort.
func TestProfileAtOOM(t *testing.T) {
	d := fidDeployment(t, "c5.large", 1)
	j := workload.ZeRO8BJob // 8B parameters fit no single small node
	p := NewSimProfiler(sim.New(5))
	r := p.ProfileAt(j, d, 0.5)
	if r.Throughput != 0 || r.Failed {
		t.Fatalf("want clean OOM result, got %+v", r)
	}
	if r.Duration != OOMFailDuration {
		t.Fatalf("OOM billed %v, want %v", r.Duration, OOMFailDuration)
	}
	if r.Fidelity != 0.5 {
		t.Fatalf("OOM at low fidelity should report the requested fraction, got %v", r.Fidelity)
	}
}

// TestMeterProfileAt: the meter books sub-sampled probes like any
// other — time, spend, count, history.
func TestMeterProfileAt(t *testing.T) {
	d := fidDeployment(t, "c5.xlarge", 4)
	j := workload.ResNetCIFAR10
	m := NewMeter(NewSimProfiler(sim.New(1)))
	r := m.ProfileAt(j, d, 0.5)
	if m.Time != r.Duration || !close(m.Spend, r.Cost, 1e-12) || m.Probes != 1 || len(m.History) != 1 {
		t.Fatalf("meter did not accumulate the low probe: %+v after %+v", m, r)
	}
}

// plainProfiler hides SimProfiler's fidelity support.
type plainProfiler struct{ inner *SimProfiler }

func (p plainProfiler) Profile(j workload.Job, d cloud.Deployment) Result {
	return p.inner.Profile(j, d)
}

// TestProbeAtFallback: a profiler without sub-sampling support runs a
// full probe, and the Result says so (Fidelity unset) — callers trust
// the delivered fidelity, so the books stay conserved.
func TestProbeAtFallback(t *testing.T) {
	d := fidDeployment(t, "c5.xlarge", 2)
	j := workload.ResNetCIFAR10
	r := ProbeAt(plainProfiler{NewSimProfiler(sim.New(9))}, j, d, 0.25)
	if r.Fidelity != 0 {
		t.Fatalf("fallback probe carries fidelity %v, want unset (full)", r.Fidelity)
	}
	if want := Duration(2); r.Duration != want {
		t.Fatalf("fallback billed %v, want the full price %v", r.Duration, want)
	}
}
