// Package profiler implements MLCD's Profiler component: it runs a short
// training probe on a candidate deployment and reports measured
// throughput together with what the probe itself cost. The time model is
// the paper's (§V-A): 10 minutes per profiling run — covering cluster
// setup and warm-up — plus one extra minute for every 3 extra nodes. The
// monetary cost follows Eq. 8: C_profile = P(m) · n · T_profile.
//
// The Profiler also reproduces the paper's stability mechanism (§IV):
// it monitors throughput across measurement iterations and extends the
// probe when the discrepancy is large.
package profiler

import (
	"fmt"
	"sync"
	"time"

	"mlcd/internal/cloud"
	"mlcd/internal/sim"
	"mlcd/internal/stats"
	"mlcd/internal/workload"
)

// BaseDuration is the single-node profiling time (setup + warm-up + run).
const BaseDuration = 10 * time.Minute

// ExtraPerNodes adds one minute for every 3 extra nodes.
const ExtraPerNodes = 3

// Duration returns T_profile for an n-node probe (Eq. 7's t(m,n); the
// paper's cost model depends on n only).
func Duration(nodes int) time.Duration {
	if nodes < 1 {
		panic(fmt.Sprintf("profiler: invalid node count %d", nodes))
	}
	extra := time.Duration((nodes-1)/ExtraPerNodes) * time.Minute
	return BaseDuration + extra
}

// Cost returns C_profile = P(m) · n · T_profile for deployment d (Eq. 8).
func Cost(d cloud.Deployment) float64 {
	return d.CostFor(Duration(d.Nodes))
}

// Result is one profiling observation.
type Result struct {
	Deployment cloud.Deployment
	Throughput float64       // measured samples/second
	Duration   time.Duration // wall-clock spent profiling (incl. extension)
	Cost       float64       // dollars spent profiling
	Trials     int           // measurement iterations folded into Throughput
	Extended   bool          // whether the stability mechanism kicked in
	// Failed marks an infrastructure failure (launch refused, cluster
	// never ready): the probe carries no signal about the deployment
	// itself, unlike an OOM crash (Throughput 0 with Failed false).
	Failed bool
	// Fidelity is the sub-sampling fraction the probe actually ran at:
	// a value in (0, 1) marks a short-burst measurement whose throughput
	// is biased low (see internal/sim's gap model). Zero means a full-
	// fidelity probe — the field stays unset on the classic path so
	// full-probe results are unchanged byte for byte.
	Fidelity float64
}

// Profiler measures candidate deployments.
type Profiler interface {
	Profile(j workload.Job, d cloud.Deployment) Result
}

// SimProfiler profiles against the performance simulator. It is safe for
// concurrent use, so searchers may run independent probes in parallel.
type SimProfiler struct {
	sim *sim.Simulator
	// StabilityCV is the coefficient-of-variation threshold above which
	// the probe is extended (default 0.08).
	StabilityCV float64
	// Extension is the extra probe time on instability (default 5 min).
	Extension time.Duration
	// trial counters make repeated probes of the same deployment see
	// fresh noise.
	mu     sync.Mutex
	trials map[string]int
}

// NewSimProfiler wraps a simulator.
func NewSimProfiler(s *sim.Simulator) *SimProfiler {
	return &SimProfiler{
		sim:         s,
		StabilityCV: 0.08,
		Extension:   5 * time.Minute,
		trials:      make(map[string]int),
	}
}

// OOMFailDuration is how long a probe runs before an out-of-memory crash
// is evident: the job dies during model build, well before the full
// warm-up completes.
const OOMFailDuration = 2 * time.Minute

// Profile implements Profiler: it takes three measurement iterations,
// extends once with three more if they disagree beyond StabilityCV, and
// returns the mean. A deployment the model cannot fit on crashes early
// and is billed only for OOMFailDuration.
func (p *SimProfiler) Profile(j workload.Job, d cloud.Deployment) Result {
	p.mu.Lock()
	defer p.mu.Unlock()
	key := j.String() + "|" + d.Key()
	if first := p.sim.MeasureThroughput(j, d, p.trials[key]); first <= 0 {
		p.trials[key]++
		return Result{
			Deployment: d,
			Throughput: 0,
			Duration:   OOMFailDuration,
			Cost:       d.CostFor(OOMFailDuration),
			Trials:     1,
		}
	}
	const iters = 3
	meas := make([]float64, 0, 2*iters)
	for i := 0; i < iters; i++ {
		meas = append(meas, p.sim.MeasureThroughput(j, d, p.trials[key]))
		p.trials[key]++
	}
	dur := Duration(d.Nodes)
	extended := false
	if cv := stats.Std(meas) / stats.Mean(meas); cv > p.StabilityCV {
		extended = true
		dur += p.Extension
		for i := 0; i < iters; i++ {
			meas = append(meas, p.sim.MeasureThroughput(j, d, p.trials[key]))
			p.trials[key]++
		}
	}
	return Result{
		Deployment: d,
		Throughput: stats.Mean(meas),
		Duration:   dur,
		Cost:       d.CostFor(dur),
		Trials:     len(meas),
		Extended:   extended,
	}
}

// Meter wraps a Profiler and accumulates total profiling time and spend;
// the search methods consult it to enforce deadlines and budgets.
type Meter struct {
	inner   Profiler
	Time    time.Duration
	Spend   float64
	Probes  int
	History []Result
}

// NewMeter wraps p.
func NewMeter(p Profiler) *Meter { return &Meter{inner: p} }

// Profile implements Profiler, accumulating the totals.
func (m *Meter) Profile(j workload.Job, d cloud.Deployment) Result {
	r := m.inner.Profile(j, d)
	m.Time += r.Duration
	m.Spend += r.Cost
	m.Probes++
	m.History = append(m.History, r)
	return r
}
