package profiler

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"mlcd/internal/cloud"
	"mlcd/internal/sim"
	"mlcd/internal/workload"
)

var cat = cloud.DefaultCatalog()

func dep(t *testing.T, name string, n int) cloud.Deployment {
	t.Helper()
	return cloud.NewDeployment(cat.MustLookup(name), n)
}

func TestDurationMatchesPaperModel(t *testing.T) {
	// §V-A: 10 minutes per probe, +1 minute per 3 extra nodes.
	cases := []struct {
		nodes int
		want  time.Duration
	}{
		{1, 10 * time.Minute},
		{2, 10 * time.Minute},
		{3, 10 * time.Minute},
		{4, 11 * time.Minute},
		{7, 12 * time.Minute},
		{10, 13 * time.Minute},
		{50, 26 * time.Minute},
		{100, 43 * time.Minute},
	}
	for _, c := range cases {
		if got := Duration(c.nodes); got != c.want {
			t.Errorf("Duration(%d) = %v, want %v", c.nodes, got, c.want)
		}
	}
}

func TestDurationPanicsOnBadNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Duration(0)
}

func TestCostEq8(t *testing.T) {
	// Eq. 8: C_profile = P(m) · n · T_profile.
	d := dep(t, "c5.4xlarge", 10)
	want := 0.68 * 10 * (13.0 / 60.0)
	if got := Cost(d); math.Abs(got-want) > 1e-9 {
		t.Fatalf("Cost = %v, want %v", got, want)
	}
}

func TestProfilingExpensiveDeploymentsCostMore(t *testing.T) {
	// The heterogeneity HeterBO exploits: a big GPU probe is orders of
	// magnitude pricier than a single cheap CPU probe.
	cheap := Cost(dep(t, "c5.large", 1))
	pricey := Cost(dep(t, "p3.16xlarge", 50))
	if pricey/cheap < 100 {
		t.Fatalf("cost spread = %.0f×, want ≫100×", pricey/cheap)
	}
}

func TestSimProfilerMeasuresNearTruth(t *testing.T) {
	s := sim.New(7)
	p := NewSimProfiler(s)
	j := workload.ResNetCIFAR10
	d := dep(t, "c5.4xlarge", 10)
	r := p.Profile(j, d)
	true_ := s.Throughput(j, d)
	if math.Abs(r.Throughput-true_)/true_ > 0.1 {
		t.Fatalf("measured %v, truth %v", r.Throughput, true_)
	}
	if r.Duration < Duration(10) {
		t.Fatalf("duration %v below the base model", r.Duration)
	}
	if r.Cost != d.CostFor(r.Duration) {
		t.Fatalf("cost %v inconsistent with duration", r.Cost)
	}
	if r.Trials < 3 {
		t.Fatalf("trials = %d, want ≥3", r.Trials)
	}
}

func TestSimProfilerFreshNoisePerProbe(t *testing.T) {
	p := NewSimProfiler(sim.New(7))
	j := workload.ResNetCIFAR10
	d := dep(t, "c5.4xlarge", 10)
	a := p.Profile(j, d)
	b := p.Profile(j, d)
	if a.Throughput == b.Throughput {
		t.Fatal("repeated probes must see fresh measurement noise")
	}
}

func TestSimProfilerStabilityExtension(t *testing.T) {
	// Force instability by making the acceptance threshold tiny: the
	// probe must extend and fold in more trials (§IV Profiler).
	p := NewSimProfiler(sim.New(7))
	p.StabilityCV = 1e-9
	r := p.Profile(workload.ResNetCIFAR10, dep(t, "c5.4xlarge", 4))
	if !r.Extended {
		t.Fatal("probe must extend under an impossible stability bar")
	}
	if r.Duration != Duration(4)+p.Extension {
		t.Fatalf("extended duration = %v", r.Duration)
	}
	if r.Trials != 6 {
		t.Fatalf("trials = %d, want 6", r.Trials)
	}
}

func TestMeterAccumulates(t *testing.T) {
	m := NewMeter(NewSimProfiler(sim.New(7)))
	j := workload.CharRNNText
	r1 := m.Profile(j, dep(t, "c5.xlarge", 1))
	r2 := m.Profile(j, dep(t, "c5.xlarge", 10))
	if m.Probes != 2 || len(m.History) != 2 {
		t.Fatalf("probes = %d", m.Probes)
	}
	if m.Time != r1.Duration+r2.Duration {
		t.Fatalf("time = %v", m.Time)
	}
	if math.Abs(m.Spend-(r1.Cost+r2.Cost)) > 1e-12 {
		t.Fatalf("spend = %v", m.Spend)
	}
}

func TestProfileInfeasibleDeploymentStillCosts(t *testing.T) {
	// OOM probes waste money — the punchline of heterogeneous cost.
	m := NewMeter(NewSimProfiler(sim.New(7)))
	r := m.Profile(workload.BERTTF, dep(t, "c5.large", 2))
	if r.Throughput != 0 {
		t.Fatalf("throughput = %v, want 0 (OOM)", r.Throughput)
	}
	if r.Cost <= 0 || m.Spend <= 0 {
		t.Fatal("failed probes must still be billed")
	}
}

// Property: probe duration is non-decreasing in node count and cost is
// exactly price·nodes·duration (Eqs. 7–8).
func TestQuickProbeCostModel(t *testing.T) {
	types := cat.Types()
	f := func(typeIdx uint8, nRaw uint8) bool {
		it := types[int(typeIdx)%len(types)]
		n := int(nRaw%100) + 1
		d := cloud.NewDeployment(it, n)
		dur := Duration(n)
		if n > 1 && dur < Duration(n-1) {
			return false
		}
		want := it.PricePerHr * float64(n) * dur.Hours()
		return math.Abs(Cost(d)-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
