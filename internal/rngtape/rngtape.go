// Package rngtape provides seeded math/rand generators whose streams are
// memoized per seed. Seeding math/rand's default source costs a ~600-word
// lagged-Fibonacci warm-up — wildly more than the handful of values most
// deterministic components actually draw: the simulator seeds a source
// per measurement trial to produce one noise sample, and a search seeds
// one per run for a few hundred hyperparameter draws. Recording a seed's
// output on a shared tape the first time and replaying it thereafter
// makes repeat seeding nearly free.
//
// The stream is the real generator's own output, memoized — not a
// reimplementation — so New(seed) behaves identically to
// rand.New(rand.NewSource(seed)), value for value.
package rngtape

import (
	"math/rand"
	"sync"
)

// tape memoizes the output stream of one seeded source.
type tape struct {
	mu   sync.Mutex
	src  rand.Source64 // the real seeded source, advanced on demand
	vals []uint64      // everything it has produced, in order
}

// at returns the i'th value of the stream, drawing from the underlying
// source as needed.
func (t *tape) at(i int) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	for len(t.vals) <= i {
		t.vals = append(t.vals, t.src.Uint64())
	}
	return t.vals[i]
}

// source replays a tape from the start; every New carries its own cursor
// over the shared tape.
type source struct {
	tape *tape
	pos  int
}

// Uint64 implements rand.Source64.
func (s *source) Uint64() uint64 {
	v := s.tape.at(s.pos)
	s.pos++
	return v
}

// Int63 implements rand.Source. The masking matches how math/rand's own
// source derives Int63 from its 64-bit stream.
func (s *source) Int63() int64 { return int64(s.Uint64() & (1<<63 - 1)) }

// Seed implements rand.Source by retargeting the cursor at a fresh tape.
func (s *source) Seed(seed int64) {
	s.tape = tapeFor(seed)
	s.pos = 0
}

var (
	tapesMu sync.Mutex
	tapes   = map[int64]*tape{}
)

// maxTapes bounds the cache. Consumers draw at most a few hundred 8-byte
// values per seed, so the worst case stays a few megabytes; evicting a
// tape only means the next user of that seed re-pays the seeding cost.
const maxTapes = 4096

func tapeFor(seed int64) *tape {
	tapesMu.Lock()
	defer tapesMu.Unlock()
	if t, ok := tapes[seed]; ok {
		return t
	}
	if len(tapes) >= maxTapes {
		for k := range tapes {
			delete(tapes, k)
			break
		}
	}
	t := &tape{src: rand.NewSource(seed).(rand.Source64)}
	tapes[seed] = t
	return t
}

// New is a drop-in replacement for rand.New(rand.NewSource(seed)) that
// amortizes the seeding cost across all users of a seed.
func New(seed int64) *rand.Rand {
	return rand.New(&source{tape: tapeFor(seed)})
}
