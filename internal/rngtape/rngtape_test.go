package rngtape

import (
	"math/rand"
	"sync"
	"testing"
)

// TestStreamMatchesMathRand is the package's core contract: New(seed)
// yields exactly the stream of rand.New(rand.NewSource(seed)) across the
// derived draw kinds the codebase uses, including on tape replays.
func TestStreamMatchesMathRand(t *testing.T) {
	for _, seed := range []int64{0, 1, -1, 42, 1 << 40} {
		for replay := 0; replay < 2; replay++ {
			want := rand.New(rand.NewSource(seed))
			got := New(seed)
			for i := 0; i < 500; i++ {
				switch i % 4 {
				case 0:
					if g, w := got.Float64(), want.Float64(); g != w {
						t.Fatalf("seed %d replay %d draw %d: Float64 %v != %v", seed, replay, i, g, w)
					}
				case 1:
					if g, w := got.NormFloat64(), want.NormFloat64(); g != w {
						t.Fatalf("seed %d replay %d draw %d: NormFloat64 %v != %v", seed, replay, i, g, w)
					}
				case 2:
					if g, w := got.Intn(1000), want.Intn(1000); g != w {
						t.Fatalf("seed %d replay %d draw %d: Intn %v != %v", seed, replay, i, g, w)
					}
				case 3:
					if g, w := got.Int63(), want.Int63(); g != w {
						t.Fatalf("seed %d replay %d draw %d: Int63 %v != %v", seed, replay, i, g, w)
					}
				}
			}
		}
	}
}

// TestIndependentCursors checks that two generators over the same seed do
// not advance each other.
func TestIndependentCursors(t *testing.T) {
	a := New(7)
	b := New(7)
	av := a.Float64()
	bv := b.Float64()
	if av != bv {
		t.Fatalf("same seed diverged: %v != %v", av, bv)
	}
	a.Float64()
	if b2, w := b.Float64(), rand.New(rand.NewSource(7)); true {
		w.Float64()
		if b2 != w.Float64() {
			t.Fatalf("cursor b advanced by reads on a")
		}
	}
}

// TestSeedRetargets checks the rand.Source Seed contract: reseeding an
// existing generator restarts the requested stream.
func TestSeedRetargets(t *testing.T) {
	g := New(1)
	g.Float64()
	g.Seed(99)
	want := rand.New(rand.NewSource(99))
	for i := 0; i < 50; i++ {
		if gv, wv := g.Float64(), want.Float64(); gv != wv {
			t.Fatalf("draw %d after Seed: %v != %v", i, gv, wv)
		}
	}
}

// TestConcurrentReaders lets the race detector audit the shared tape.
func TestConcurrentReaders(t *testing.T) {
	want := make([]float64, 200)
	ref := rand.New(rand.NewSource(555))
	for i := range want {
		want[i] = ref.Float64()
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g := New(555)
			for i := range want {
				if v := g.Float64(); v != want[i] {
					t.Errorf("draw %d: %v != %v", i, v, want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestEvictionBound keeps the tape cache from growing without limit.
func TestEvictionBound(t *testing.T) {
	for s := int64(0); s < maxTapes+100; s++ {
		New(s).Float64()
	}
	tapesMu.Lock()
	n := len(tapes)
	tapesMu.Unlock()
	if n > maxTapes {
		t.Fatalf("tape cache holds %d entries, cap %d", n, maxTapes)
	}
}
