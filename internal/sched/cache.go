package sched

import (
	"sort"
	"sync"
	"time"

	"mlcd/internal/cloud"
	"mlcd/internal/profiler"
	"mlcd/internal/search"
	"mlcd/internal/workload"
)

// ProfileCache is the shared profiling store at the heart of the
// scheduler: every measured probe of (job, instance type, node count) is
// kept, so concurrent or later submissions of the same workload reuse
// the measurement instead of re-paying the profiling bill — the paper's
// scarce resource. Concurrent requests for the same key are deduplicated
// singleflight-style: one caller measures, the rest wait and share.
//
// The cache also keeps the savings ledger: profiling dollars and hours
// that cache hits spared, in total and per tenant.
type ProfileCache struct {
	mu       sync.Mutex
	entries  map[string]profiler.Result
	inflight map[string]*flight

	hits      int
	misses    int
	savedUSD  float64
	savedTime time.Duration
	byTenant  map[string]float64
}

// flight is one in-progress measurement that followers wait on.
type flight struct {
	done chan struct{}
	res  profiler.Result
}

// NewProfileCache returns an empty cache.
func NewProfileCache() *ProfileCache {
	return &ProfileCache{
		entries:  make(map[string]profiler.Result),
		inflight: make(map[string]*flight),
		byTenant: make(map[string]float64),
	}
}

// cacheKey identifies one profiling measurement. Throughput depends on
// the full job identity (model, dataset, platform, topology), not just
// its display name, so the workload's String form is part of the key.
func cacheKey(j workload.Job, d cloud.Deployment) string {
	return j.String() + "|" + d.Key()
}

// Do returns the measurement for (j, d), measuring at most once: a
// cached result is returned immediately; if another goroutine is
// measuring the same key, Do waits and shares its result; otherwise Do
// measures via measure and publishes the result. hit reports whether the
// caller was spared the measurement; on a hit the savings are credited
// to tenant. Failed probes (infrastructure errors, no signal) are handed
// to waiting followers but never cached.
func (c *ProfileCache) Do(j workload.Job, d cloud.Deployment, tenant string, measure func() profiler.Result) (res profiler.Result, hit bool) {
	key := cacheKey(j, d)
	c.mu.Lock()
	if res, ok := c.entries[key]; ok {
		c.creditLocked(res, tenant)
		c.mu.Unlock()
		return res, true
	}
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-f.done
		c.mu.Lock()
		c.creditLocked(f.res, tenant)
		c.mu.Unlock()
		return f.res, true
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.misses++
	c.mu.Unlock()

	f.res = measure()

	c.mu.Lock()
	if !f.res.Failed {
		c.entries[key] = f.res
	}
	delete(c.inflight, key)
	c.mu.Unlock()
	close(f.done)
	return f.res, false
}

// creditLocked books one cache hit's savings. Callers hold c.mu.
func (c *ProfileCache) creditLocked(res profiler.Result, tenant string) {
	c.hits++
	c.savedUSD += res.Cost
	c.savedTime += res.Duration
	c.byTenant[tenant] += res.Cost
}

// Prime inserts a previously persisted measurement (journal recovery)
// without counting it as a hit or a miss. Existing entries win: a live
// measurement is never overwritten by a replayed one.
func (c *ProfileCache) Prime(j workload.Job, res profiler.Result) {
	key := cacheKey(j, res.Deployment)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; !ok && !res.Failed {
		c.entries[key] = res
	}
}

// Observations returns every cached measurement of job j as warm-start
// observations, in deterministic (type, nodes) order. OOM probes
// (throughput 0) are included — they teach the searcher its memory
// bounds for free.
func (c *ProfileCache) Observations(j workload.Job) []search.Observation {
	prefix := j.String() + "|"
	c.mu.Lock()
	var obs []search.Observation
	for key, res := range c.entries {
		if len(key) > len(prefix) && key[:len(prefix)] == prefix {
			obs = append(obs, search.Observation{Deployment: res.Deployment, Throughput: res.Throughput})
		}
	}
	c.mu.Unlock()
	sort.Slice(obs, func(a, b int) bool {
		if obs[a].Deployment.Type.Name != obs[b].Deployment.Type.Name {
			return obs[a].Deployment.Type.Name < obs[b].Deployment.Type.Name
		}
		return obs[a].Deployment.Nodes < obs[b].Deployment.Nodes
	})
	return obs
}

// CacheStats is a point-in-time snapshot of the cache's effectiveness.
type CacheStats struct {
	Entries           int                `json:"entries"`
	Hits              int                `json:"hits"`
	Misses            int                `json:"misses"`
	HitRate           float64            `json:"hit_rate"`
	SavedUSD          float64            `json:"saved_profile_usd"`
	SavedProfileHours float64            `json:"saved_profile_hours"`
	SavedByTenant     map[string]float64 `json:"saved_usd_by_tenant,omitempty"`
}

// Stats snapshots the cache counters.
func (c *ProfileCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CacheStats{
		Entries:           len(c.entries),
		Hits:              c.hits,
		Misses:            c.misses,
		SavedUSD:          c.savedUSD,
		SavedProfileHours: c.savedTime.Hours(),
	}
	if total := c.hits + c.misses; total > 0 {
		st.HitRate = float64(c.hits) / float64(total)
	}
	if len(c.byTenant) > 0 {
		st.SavedByTenant = make(map[string]float64, len(c.byTenant))
		for t, v := range c.byTenant {
			st.SavedByTenant[t] = v
		}
	}
	return st
}
