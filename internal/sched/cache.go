package sched

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mlcd/internal/cloud"
	"mlcd/internal/profiler"
	"mlcd/internal/search"
	"mlcd/internal/workload"
)

// ProfileCache is the shared profiling store at the heart of the
// scheduler: every measured probe of (job, instance type, node count) is
// kept, so concurrent or later submissions of the same workload reuse
// the measurement instead of re-paying the profiling bill — the paper's
// scarce resource. Concurrent requests for the same key are deduplicated
// singleflight-style: one caller measures, the rest wait and share.
//
// The cache also keeps the savings ledger: profiling dollars and hours
// that cache hits spared, in total and per tenant.
//
// Under the sharded control plane (internal/shardplane) the cache is
// the *hot tier* of a two-tier structure: each shard owns one, and a
// merge loop periodically publishes the union of every shard's entries
// as an immutable CacheSnapshot installed on all shards. A miss in the
// hot map falls through to the snapshot before measuring, and a
// snapshot hit is promoted into the hot map — so a tenant rerouted to a
// different shard by a reshard still warm-starts from measurements its
// old shard paid for.
type ProfileCache struct {
	mu       sync.Mutex
	entries  map[string]profiler.Result
	inflight map[string]*flight
	snap     atomic.Pointer[CacheSnapshot] // shared read-only tier (may be nil)

	hits         int
	snapshotHits int // subset of hits answered by the shared tier
	misses       int
	savedUSD     float64
	savedTime    time.Duration
	byTenant     map[string]float64
}

// CacheSnapshot is an immutable, shareable view of merged cache entries
// — the read-only tier. It is built once (NewCacheSnapshot) and then
// only ever read, so shards consult it without locking.
type CacheSnapshot struct {
	entries map[string]profiler.Result
}

// NewCacheSnapshot builds a snapshot from merged entries. The map is
// owned by the snapshot afterwards; callers must not mutate it.
func NewCacheSnapshot(entries map[string]profiler.Result) *CacheSnapshot {
	return &CacheSnapshot{entries: entries}
}

// Len reports how many measurements the snapshot holds.
func (s *CacheSnapshot) Len() int {
	if s == nil {
		return 0
	}
	return len(s.entries)
}

// flight is one in-progress measurement that followers wait on.
type flight struct {
	done chan struct{}
	res  profiler.Result
}

// NewProfileCache returns an empty cache.
func NewProfileCache() *ProfileCache {
	return &ProfileCache{
		entries:  make(map[string]profiler.Result),
		inflight: make(map[string]*flight),
		byTenant: make(map[string]float64),
	}
}

// cacheKey identifies one profiling measurement. Throughput depends on
// the full job identity (model, dataset, platform, topology), not just
// its display name, so the workload's String form is part of the key.
func cacheKey(j workload.Job, d cloud.Deployment) string {
	return j.String() + "|" + d.Key()
}

// Do returns the measurement for (j, d), measuring at most once: a
// cached result is returned immediately; if another goroutine is
// measuring the same key, Do waits and shares its result; otherwise Do
// measures via measure and publishes the result. hit reports whether the
// caller was spared the measurement; on a hit the savings are credited
// to tenant. Failed probes (infrastructure errors, no signal) are handed
// to waiting followers but never cached.
func (c *ProfileCache) Do(j workload.Job, d cloud.Deployment, tenant string, measure func() profiler.Result) (res profiler.Result, hit bool) {
	key := cacheKey(j, d)
	c.mu.Lock()
	if res, ok := c.entries[key]; ok {
		c.creditLocked(res, tenant)
		c.mu.Unlock()
		return res, true
	}
	if snap := c.snap.Load(); snap != nil {
		if res, ok := snap.entries[key]; ok {
			// Shared-tier hit: another shard paid for this measurement.
			// Promote it so later lookups (and the next snapshot merge)
			// see it locally.
			c.entries[key] = res
			c.creditLocked(res, tenant)
			c.snapshotHits++
			c.mu.Unlock()
			return res, true
		}
	}
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-f.done
		c.mu.Lock()
		c.creditLocked(f.res, tenant)
		c.mu.Unlock()
		return f.res, true
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.misses++
	c.mu.Unlock()

	f.res = measure()

	c.mu.Lock()
	if !f.res.Failed {
		c.entries[key] = f.res
	}
	delete(c.inflight, key)
	c.mu.Unlock()
	close(f.done)
	return f.res, false
}

// creditLocked books one cache hit's savings. Callers hold c.mu.
func (c *ProfileCache) creditLocked(res profiler.Result, tenant string) {
	c.hits++
	c.savedUSD += res.Cost
	c.savedTime += res.Duration
	c.byTenant[tenant] += res.Cost
}

// Prime inserts a previously persisted measurement (journal recovery)
// without counting it as a hit or a miss. Existing entries win: a live
// measurement is never overwritten by a replayed one.
func (c *ProfileCache) Prime(j workload.Job, res profiler.Result) {
	key := cacheKey(j, res.Deployment)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; !ok && !res.Failed {
		c.entries[key] = res
	}
}

// Observations returns every cached measurement of job j — hot map and
// shared snapshot merged, hot entries winning — as warm-start
// observations, in deterministic (type, nodes) order. OOM probes
// (throughput 0) are included — they teach the searcher its memory
// bounds for free.
func (c *ProfileCache) Observations(j workload.Job) []search.Observation {
	prefix := j.String() + "|"
	snap := c.snap.Load()
	c.mu.Lock()
	var obs []search.Observation
	seen := make(map[string]bool, len(c.entries))
	for key, res := range c.entries {
		if len(key) > len(prefix) && key[:len(prefix)] == prefix {
			seen[key] = true
			obs = append(obs, search.Observation{Deployment: res.Deployment, Throughput: res.Throughput})
		}
	}
	c.mu.Unlock()
	if snap != nil {
		for key, res := range snap.entries {
			if len(key) > len(prefix) && key[:len(prefix)] == prefix && !seen[key] {
				obs = append(obs, search.Observation{Deployment: res.Deployment, Throughput: res.Throughput})
			}
		}
	}
	sort.Slice(obs, func(a, b int) bool {
		if obs[a].Deployment.Type.Name != obs[b].Deployment.Type.Name {
			return obs[a].Deployment.Type.Name < obs[b].Deployment.Type.Name
		}
		return obs[a].Deployment.Nodes < obs[b].Deployment.Nodes
	})
	return obs
}

// Export copies the hot map for a snapshot merge. The returned map is
// the caller's to own.
func (c *ProfileCache) Export() map[string]profiler.Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]profiler.Result, len(c.entries))
	for k, v := range c.entries {
		out[k] = v
	}
	return out
}

// SetSnapshot installs the shared read-only tier consulted on hot-map
// misses. Pass nil to detach. Safe to call while probes are in flight.
func (c *ProfileCache) SetSnapshot(snap *CacheSnapshot) {
	c.snap.Store(snap)
}

// CacheStats is a point-in-time snapshot of the cache's effectiveness.
type CacheStats struct {
	Entries           int                `json:"entries"`
	SnapshotEntries   int                `json:"snapshot_entries,omitempty"`
	Hits              int                `json:"hits"`
	SnapshotHits      int                `json:"snapshot_hits,omitempty"`
	Misses            int                `json:"misses"`
	HitRate           float64            `json:"hit_rate"`
	SavedUSD          float64            `json:"saved_profile_usd"`
	SavedProfileHours float64            `json:"saved_profile_hours"`
	SavedByTenant     map[string]float64 `json:"saved_usd_by_tenant,omitempty"`
}

// Stats snapshots the cache counters.
func (c *ProfileCache) Stats() CacheStats {
	snap := c.snap.Load()
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CacheStats{
		Entries:           len(c.entries),
		SnapshotEntries:   snap.Len(),
		Hits:              c.hits,
		SnapshotHits:      c.snapshotHits,
		Misses:            c.misses,
		SavedUSD:          c.savedUSD,
		SavedProfileHours: c.savedTime.Hours(),
	}
	if total := c.hits + c.misses; total > 0 {
		st.HitRate = float64(c.hits) / float64(total)
	}
	if len(c.byTenant) > 0 {
		st.SavedByTenant = make(map[string]float64, len(c.byTenant))
		for t, v := range c.byTenant {
			st.SavedByTenant[t] = v
		}
	}
	return st
}
