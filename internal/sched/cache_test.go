package sched

import (
	"sync"
	"testing"
	"time"

	"mlcd/internal/cloud"
	"mlcd/internal/profiler"
	"mlcd/internal/workload"
)

func testDeployment(t *testing.T, nodes int) cloud.Deployment {
	t.Helper()
	it, ok := cloud.DefaultCatalog().Lookup("c5.4xlarge")
	if !ok {
		t.Fatal("catalog lost c5.4xlarge")
	}
	return cloud.Deployment{Type: it, Nodes: nodes}
}

func TestCacheSingleflight(t *testing.T) {
	c := NewProfileCache()
	j := workload.ResNetCIFAR10
	d := testDeployment(t, 4)

	const goroutines = 8
	var measures int
	var mu sync.Mutex
	var wg sync.WaitGroup
	results := make([]profiler.Result, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, _ := c.Do(j, d, "acme", func() profiler.Result {
				mu.Lock()
				measures++
				mu.Unlock()
				time.Sleep(20 * time.Millisecond) // hold the flight open
				return profiler.Result{Deployment: d, Throughput: 123, Duration: 10 * time.Minute, Cost: 5}
			})
			results[i] = res
		}()
	}
	wg.Wait()

	if measures != 1 {
		t.Fatalf("measured %d times, want 1", measures)
	}
	for i, r := range results {
		if r.Throughput != 123 {
			t.Fatalf("goroutine %d got %+v", i, r)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != goroutines-1 {
		t.Fatalf("stats = %+v", st)
	}
	if want := 5.0 * float64(goroutines-1); st.SavedUSD != want {
		t.Fatalf("saved %.2f, want %.2f", st.SavedUSD, want)
	}
	if st.SavedByTenant["acme"] != st.SavedUSD {
		t.Fatalf("tenant ledger = %+v", st.SavedByTenant)
	}
}

func TestCacheFailedProbesNotCached(t *testing.T) {
	c := NewProfileCache()
	j := workload.ResNetCIFAR10
	d := testDeployment(t, 2)

	res, hit := c.Do(j, d, "t", func() profiler.Result {
		return profiler.Result{Deployment: d, Failed: true}
	})
	if hit || !res.Failed {
		t.Fatalf("failed probe: hit=%v res=%+v", hit, res)
	}
	// A retry must measure again, not serve the failure.
	res2, hit2 := c.Do(j, d, "t", func() profiler.Result {
		return profiler.Result{Deployment: d, Throughput: 50}
	})
	if hit2 || res2.Throughput != 50 {
		t.Fatalf("retry after failure: hit=%v res=%+v", hit2, res2)
	}
	// Now it is cached.
	if _, hit3 := c.Do(j, d, "t", func() profiler.Result { panic("must not measure") }); !hit3 {
		t.Fatal("third probe missed a cached entry")
	}
}

func TestCacheObservationsAndPrime(t *testing.T) {
	c := NewProfileCache()
	j := workload.ResNetCIFAR10
	other := workload.AlexNetCIFAR10

	c.Prime(j, profiler.Result{Deployment: testDeployment(t, 8), Throughput: 80})
	c.Prime(j, profiler.Result{Deployment: testDeployment(t, 2), Throughput: 20})
	c.Prime(j, profiler.Result{Deployment: testDeployment(t, 2), Throughput: 999}) // dup: first wins
	c.Prime(other, profiler.Result{Deployment: testDeployment(t, 1), Throughput: 10})
	c.Prime(j, profiler.Result{Deployment: testDeployment(t, 3), Failed: true}) // no signal

	obs := c.Observations(j)
	if len(obs) != 2 {
		t.Fatalf("observations = %+v", obs)
	}
	if obs[0].Deployment.Nodes != 2 || obs[0].Throughput != 20 {
		t.Fatalf("obs[0] = %+v (dup should not overwrite)", obs[0])
	}
	if obs[1].Deployment.Nodes != 8 || obs[1].Throughput != 80 {
		t.Fatalf("obs[1] = %+v", obs[1])
	}
	if st := c.Stats(); st.Entries != 3 || st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("prime must not move hit counters: %+v", st)
	}
}
