package sched

import (
	"context"
	"errors"
	"testing"
	"time"

	"mlcd/internal/chaos"
	"mlcd/internal/cloud"
	"mlcd/internal/mlcdsys"
)

// wallClockProvider hides the wrapped provider's cloud.ClockAdvancer
// (and every other optional interface) behind the plain Provider
// surface, so the execution layer's backoff sleeps on a real timer —
// the only way a worker can be caught genuinely mid-backoff.
type wallClockProvider struct{ cloud.Provider }

// TestShutdownNoLeakMidChaosBackoff wedges a worker *inside* the retry
// path: a chaos plan refuses every launch, the retry policy backs off
// for an hour on the wall clock, and Shutdown fires while the worker is
// asleep in that backoff. The cancelled run context must abort the
// sleep immediately and every scheduler goroutine must exit — a backoff
// that ignores cancellation would pin the worker (and the daemon's
// shutdown) for the full backoff.
func TestShutdownNoLeakMidChaosBackoff(t *testing.T) {
	baseline := goroutineCount()

	cat, err := cloud.DefaultCatalog().Subset("c5.4xlarge")
	if err != nil {
		t.Fatal(err)
	}
	inner := cloud.NewSimProvider(cloud.DefaultQuota, time.Minute)
	storm := chaos.Wrap(inner, chaos.Plan{
		Name:   "total-storm",
		Faults: []chaos.Fault{{Kind: chaos.KindLaunchError, Rate: 1, DelaySeconds: 1}},
	}, 1, nil)
	sys := mlcdsys.New(mlcdsys.Config{
		Catalog:  cat,
		Limits:   cloud.SpaceLimits{MaxCPUNodes: 40, MaxGPUNodes: 1},
		Provider: wallClockProvider{storm},
		Seed:     1,
		Resilience: mlcdsys.Resilience{
			// MaxWait must clear the backoff, or the retry loop gives up
			// instead of sleeping and nothing is ever mid-backoff.
			Retry: mlcdsys.RetryPolicy{BaseBackoff: time.Hour, MaxBackoff: time.Hour, MaxWait: 3 * time.Hour},
		},
	})
	s, err := New(sys, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit("resnet-cifar10", "acme", mlcdsys.Requirements{Budget: 100}); err != nil {
		t.Fatal(err)
	}

	// The first refused launch puts the worker into its hour-long backoff.
	deadline := time.Now().Add(10 * time.Second)
	for storm.Injected(chaos.KindLaunchError) == 0 {
		if !time.Now().Before(deadline) {
			t.Fatal("chaos plan never refused a launch")
		}
		time.Sleep(time.Millisecond)
	}

	// Shutdown's grace period expires with the worker mid-backoff; the
	// run context is cancelled and the sleep must return at once.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want context.DeadlineExceeded", err)
	}
	awaitGoroutines(t, baseline)
}
