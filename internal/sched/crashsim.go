package sched

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"mlcd/internal/faultfs"
	"mlcd/internal/search"
)

// The crash-restart simulator drives a SegmentedJournal through a
// seeded script of appends, terminal records, probes, and compactions
// over faultfs.Mem, kills the "process" at an arbitrary filesystem
// operation (plus any extra planned faults), restarts over the
// surviving bytes, and checks the journal's durability contract:
//
//   - no acked submission lost: every submit whose append returned nil
//     is reconstructible after the crash (present, or provably
//     terminal and legitimately compacted away);
//   - no duplicate terminal status and no duplicate recovered
//     submission: replay folds retried records, never double-runs;
//   - duplicate raw submit records are byte-identical: a retried append
//     re-wrote the same identity — the ID-reuse failure mode writes two
//     different submissions under one ID;
//   - acked probes survive: profiling observations, the paper's
//     expensive resource, are never silently re-bought;
//   - recovery is clean: replay over any crash survivor never panics
//     and never errors;
//   - compaction is idempotent: compact → replay sees the same
//     effective state as compact-twice → replay, including when the
//     crash interrupted a compaction that is then retried.
//
// Every check is a plain function over oracle + replayed state, so each
// has a negative test proving it fires.

// CrashPlan is one seeded simulation: plain data, so failing plans
// serialize to JSON reproducers.
type CrashPlan struct {
	// Seed drives the operation script (what gets journaled when).
	Seed int64 `json:"seed"`
	// Ops is the script length (journal-level operations, not FS ops).
	Ops int `json:"ops"`
	// MaxRecords is the rotation threshold (small values make rotation
	// and compaction crash windows reachable in short scripts).
	MaxRecords int `json:"max_records"`
	// CrashAtOp kills the process at this 1-based filesystem operation
	// (0 = run to completion). Enumerated exhaustively by the storm.
	CrashAtOp int64 `json:"crash_at_op,omitempty"`
	// CrashSeed picks which unsynced bytes survive the crash (torn-tail
	// prefix, pending-metadata cut point).
	CrashSeed int64 `json:"crash_seed,omitempty"`
	// Faults are extra non-crash faults active during the script (EIO,
	// ENOSPC, short writes, failed fsync).
	Faults []faultfs.Fault `json:"faults,omitempty"`
}

// CrashReport describes one simulation run that upheld every invariant.
type CrashReport struct {
	TotalFSOps    int64  `json:"total_fs_ops"` // FS ops the run performed (bounds CrashAtOp enumeration)
	Crashed       bool   `json:"crashed"`
	Phase         string `json:"phase"` // append | rotation | compaction | open | none
	AckedSubs     int    `json:"acked_subs"`
	AckedDones    int    `json:"acked_dones"`
	AckedProbes   int    `json:"acked_probes"`
	RejectedOps   int    `json:"rejected_ops"` // appends refused by planned faults
	RecoveredSubs int    `json:"recovered_subs"`
}

// simOracle tracks what the simulated clients were told.
type simOracle struct {
	ackedSubs   map[string]bool   // submit append returned nil
	subPayload  map[string]string // id → canonical JSON payload
	ackedDones  map[string]Status // terminal append returned nil
	triedDones  map[string]bool   // terminal append attempted (acked or not)
	ackedProbes map[string]bool   // probe key "job|type|nodes"
	rejected    int
}

func newSimOracle() *simOracle {
	return &simOracle{
		ackedSubs:   make(map[string]bool),
		subPayload:  make(map[string]string),
		ackedDones:  make(map[string]Status),
		triedDones:  make(map[string]bool),
		ackedProbes: make(map[string]bool),
	}
}

const crashSimDir = "jdir"

// probeKey matches Compact's dedup key.
func probeKey(job, typ string, nodes int) string {
	return fmt.Sprintf("%s|%s|%d", job, typ, nodes)
}

// RunCrashPlan executes one plan end to end and returns a non-nil error
// iff an invariant was violated (the report is still best-effort
// populated for diagnostics).
func RunCrashPlan(plan CrashPlan) (CrashReport, error) {
	var rep CrashReport
	if plan.Ops <= 0 {
		plan.Ops = 40
	}
	if plan.MaxRecords <= 0 {
		plan.MaxRecords = 8
	}
	mem := faultfs.NewMem()
	inj := faultfs.NewInjector(mem, rand.New(rand.NewSource(plan.CrashSeed)))
	faults := append([]faultfs.Fault(nil), plan.Faults...)
	if plan.CrashAtOp > 0 {
		faults = append(faults, faultfs.Fault{AtOp: plan.CrashAtOp, Mode: faultfs.ModeCrash})
	}
	inj.SetPlan(faults)

	oracle := newSimOracle()
	j, err := OpenSegmented(SegmentedConfig{Dir: crashSimDir, MaxRecords: plan.MaxRecords, FS: inj})
	switch {
	case err == nil:
		runCrashScript(j, rand.New(rand.NewSource(plan.Seed)), plan.Ops, oracle)
		_ = j.Close() // best-effort: the FS may be dead
	case errors.Is(err, faultfs.ErrCrashed):
		// Crashed while opening/repairing: the process never came up.
	default:
		// A non-crash fault refused the open; also a legitimate outcome.
		oracle.rejected++
	}
	rep.TotalFSOps = inj.CountOps()
	rep.Crashed = inj.Crashed()
	rep.Phase = "none"
	if cp, ok := inj.LastCrashPoint(); ok {
		rep.Phase = classifyCrashPhase(cp)
	}
	rep.AckedSubs = len(oracle.ackedSubs)
	rep.AckedDones = len(oracle.ackedDones)
	rep.AckedProbes = len(oracle.ackedProbes)
	rep.RejectedOps = oracle.rejected

	// ---- Restart over the survivors: the conformance checks. ----
	state, _, err := replayNoPanic(mem)
	if err != nil {
		return rep, fmt.Errorf("clean-recovery invariant: %w", err)
	}
	rep.RecoveredSubs = len(state.Subs)
	if err := checkUniqueSubs(state); err != nil {
		return rep, err
	}
	if err := checkNoAckedSubLost(oracle, state); err != nil {
		return rep, err
	}
	if err := checkNoAckedTerminalLost(oracle, state); err != nil {
		return rep, err
	}
	if err := checkAckedProbesSurvive(oracle, state); err != nil {
		return rep, err
	}
	if err := checkRawSubmitRecords(mem); err != nil {
		return rep, err
	}

	// ---- Compaction idempotence under crash-retry. ----
	// Reopen (repairs any torn tail, clears stale tmp), then compact
	// twice; the effective state must not drift.
	j2, err := OpenSegmented(SegmentedConfig{Dir: crashSimDir, MaxRecords: plan.MaxRecords, FS: mem})
	if err != nil {
		return rep, fmt.Errorf("clean-recovery invariant: reopen after crash: %w", err)
	}
	defer func() { _ = j2.Close() }()
	st0, _, err := replayNoPanic(mem)
	if err != nil {
		return rep, fmt.Errorf("clean-recovery invariant: replay after reopen: %w", err)
	}
	if err := j2.Compact(); err != nil {
		return rep, fmt.Errorf("compaction-idempotence invariant: fault-free compact failed: %w", err)
	}
	st1, _, err := replayNoPanic(mem)
	if err != nil {
		return rep, fmt.Errorf("clean-recovery invariant: replay after compact: %w", err)
	}
	if err := j2.Compact(); err != nil {
		return rep, fmt.Errorf("compaction-idempotence invariant: second compact failed: %w", err)
	}
	st2, _, err := replayNoPanic(mem)
	if err != nil {
		return rep, fmt.Errorf("clean-recovery invariant: replay after second compact: %w", err)
	}
	if err := checkCompactionIdempotent(st0, st1, st2); err != nil {
		return rep, err
	}
	// The compacted view must still uphold the ack contract.
	if err := checkNoAckedSubLost(oracle, st2); err != nil {
		return rep, fmt.Errorf("after compaction: %w", err)
	}
	if err := checkAckedProbesSurvive(oracle, st2); err != nil {
		return rep, fmt.Errorf("after compaction: %w", err)
	}
	return rep, nil
}

// runCrashScript drives the journal until the script ends or the
// filesystem crashes. Failed appends are retried once with the
// identical record — the client-retry behavior that makes duplicate
// records legitimate history.
func runCrashScript(j *SegmentedJournal, rng *rand.Rand, ops int, o *simOracle) {
	var live []string
	nextID := 0
	types := []string{"c5.4xlarge", "p3.2xlarge", "m5.large"}
	statuses := []Status{StatusDone, StatusFailed, StatusCancelled}

	// tryAppend returns false when the process died.
	tryAppend := func(rec journalRecord) (acked, alive bool) {
		for attempt := 0; attempt < 2; attempt++ {
			err := j.append(rec)
			if err == nil {
				return true, true
			}
			if errors.Is(err, faultfs.ErrCrashed) {
				return false, false
			}
		}
		o.rejected++
		return false, true
	}

	for i := 0; i < ops; i++ {
		switch p := rng.Intn(100); {
		case p < 40: // submit
			nextID++
			id := fmt.Sprintf("job-%04d", nextID)
			rec := journalRecord{
				Type:      "submit",
				ID:        id,
				Job:       "resnet-cifar10",
				Tenant:    fmt.Sprintf("t%d", rng.Intn(5)),
				BudgetUSD: float64(50 + rng.Intn(200)),
			}
			b, _ := json.Marshal(rec)
			o.subPayload[id] = string(b)
			acked, alive := tryAppend(rec)
			if acked {
				o.ackedSubs[id] = true
				live = append(live, id)
			}
			if !alive {
				return
			}
		case p < 65 && len(live) > 0: // done
			k := rng.Intn(len(live))
			id := live[k]
			st := statuses[rng.Intn(len(statuses))]
			o.triedDones[id] = true
			acked, alive := tryAppend(journalRecord{Type: "done", ID: id, Status: st})
			if acked {
				o.ackedDones[id] = st
				live = append(live[:k], live[k+1:]...)
			}
			if !alive {
				return
			}
		case p < 90: // probe
			typ := types[rng.Intn(len(types))]
			nodes := 1 + rng.Intn(8)
			rec := journalRecord{
				Type: "probe",
				Job:  "resnet-cifar10",
				Observation: &search.SavedObservation{
					Type: typ, Nodes: nodes, Throughput: 100 + float64(rng.Intn(900)),
				},
				DurationSec: 600,
				CostUSD:     2 + rng.Float64(),
			}
			acked, alive := tryAppend(rec)
			if acked {
				o.ackedProbes[probeKey(rec.Job, typ, nodes)] = true
			}
			if !alive {
				return
			}
		default: // compact
			if err := j.Compact(); errors.Is(err, faultfs.ErrCrashed) {
				return
			}
		}
	}
}

// classifyCrashPhase buckets a crash point into the journal phase it
// interrupted, for storm coverage reporting.
func classifyCrashPhase(cp faultfs.CrashPoint) string {
	switch {
	case strings.Contains(cp.Path, snapshotName) || cp.Op == faultfs.OpRemove:
		return "compaction"
	case cp.Op == faultfs.OpRename:
		return "compaction"
	case cp.Op == faultfs.OpOpen || cp.Op == faultfs.OpClose || cp.Op == faultfs.OpTruncate:
		return "rotation" // segment handoff / tail repair
	default:
		return "append"
	}
}

// replayNoPanic replays the simulator's journal directory, converting a
// panic — which the clean-recovery invariant forbids outright — into an
// error.
func replayNoPanic(fsys faultfs.FS) (st JournalState, rs ReplayStats, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("replay panicked: %v", r)
		}
	}()
	return ReplaySegmentedFS(fsys, crashSimDir)
}

// checkUniqueSubs: replay must never yield two submissions with one ID
// (the double-enqueue failure mode).
func checkUniqueSubs(st JournalState) error {
	seen := make(map[string]bool, len(st.Subs))
	for _, sub := range st.Subs {
		if seen[sub.ID] {
			return fmt.Errorf("unique-subs invariant: submission %s recovered twice", sub.ID)
		}
		seen[sub.ID] = true
	}
	return nil
}

// checkNoAckedSubLost: every acked submission is present after replay,
// unless a terminal record was at least attempted for it — the only way
// compaction may legitimately shed it.
func checkNoAckedSubLost(o *simOracle, st JournalState) error {
	present := make(map[string]bool, len(st.Subs))
	for _, sub := range st.Subs {
		present[sub.ID] = true
	}
	for id := range o.ackedSubs {
		if !present[id] && !o.triedDones[id] {
			return fmt.Errorf("no-acked-sub-lost invariant: %s was acked, never finished, and is gone", id)
		}
	}
	return nil
}

// checkNoAckedTerminalLost: a submission whose terminal status was
// acked must never replay as live (it would re-run a finished job), and
// when present its status must match what the client was told.
func checkNoAckedTerminalLost(o *simOracle, st JournalState) error {
	for _, sub := range st.Subs {
		want, acked := o.ackedDones[sub.ID]
		if !acked {
			continue
		}
		if sub.Status == "" {
			return fmt.Errorf("no-acked-terminal-lost invariant: %s finished (%s was acked) but replays as live", sub.ID, want)
		}
		if sub.Status != want {
			return fmt.Errorf("no-acked-terminal-lost invariant: %s acked as %s, replays as %s", sub.ID, want, sub.Status)
		}
	}
	return nil
}

// checkAckedProbesSurvive: every acked probe key is still present — a
// lost measurement is profiling money silently re-spent.
func checkAckedProbesSurvive(o *simOracle, st JournalState) error {
	present := make(map[string]bool, len(st.Probes))
	for _, p := range st.Probes {
		present[probeKey(p.Job, p.Observation.Type, p.Observation.Nodes)] = true
	}
	for key := range o.ackedProbes {
		if !present[key] {
			return fmt.Errorf("acked-probes-survive invariant: probe %s was acked and is gone", key)
		}
	}
	return nil
}

// checkRawSubmitRecords scans the raw surviving segment bytes: two
// decodable submit records with one ID must be byte-identical (a client
// retry), never two different submissions under a reused ID.
func checkRawSubmitRecords(fsys faultfs.FS) error {
	seqs, err := listSegments(fsys, crashSimDir)
	if err != nil {
		return fmt.Errorf("raw-records scan: %w", err)
	}
	byID := make(map[string]string)
	for _, seq := range seqs {
		b, err := fsys.ReadFile(segPath(crashSimDir, seq))
		if err != nil {
			return fmt.Errorf("raw-records scan: %w", err)
		}
		for _, line := range strings.Split(string(b), "\n") {
			if line == "" {
				continue
			}
			var rec journalRecord
			if json.Unmarshal([]byte(line), &rec) != nil {
				continue // torn bytes are replay's problem, not this check's
			}
			if rec.Type != "submit" {
				continue
			}
			if prev, ok := byID[rec.ID]; ok && prev != line {
				return fmt.Errorf("raw-records invariant: submit %s appears with diverging payloads (ID reuse): %s vs %s", rec.ID, prev, line)
			}
			byID[rec.ID] = line
		}
	}
	return nil
}

// effectiveState is the order-insensitive view compaction must
// preserve: which jobs are still owed work, which measurements exist,
// and the ID high-water mark.
type effectiveState struct {
	Live      string
	ProbeKeys string
	MaxID     int
}

func normalizeState(st JournalState) effectiveState {
	var live []string
	for _, sub := range st.Subs {
		if sub.Status == "" {
			live = append(live, sub.ID)
		}
	}
	sort.Strings(live)
	keys := make([]string, 0, len(st.Probes))
	seen := make(map[string]bool)
	for _, p := range st.Probes {
		k := probeKey(p.Job, p.Observation.Type, p.Observation.Nodes)
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return effectiveState{Live: strings.Join(live, ","), ProbeKeys: strings.Join(keys, ","), MaxID: st.MaxID}
}

// checkCompactionIdempotent: replay before compaction, after one
// compaction, and after a second must agree on the effective state.
func checkCompactionIdempotent(st0, st1, st2 JournalState) error {
	n0, n1, n2 := normalizeState(st0), normalizeState(st1), normalizeState(st2)
	if n0 != n1 {
		return fmt.Errorf("compaction-idempotence invariant: compaction changed effective state: %+v -> %+v", n0, n1)
	}
	if n1 != n2 {
		return fmt.Errorf("compaction-idempotence invariant: repeated compaction drifted: %+v -> %+v", n1, n2)
	}
	return nil
}

// ShrinkCrashPlan greedily minimizes a failing plan: shorter scripts
// first, then dropped extra faults, then a smaller rotation threshold —
// re-verifying the failure after each candidate step, within a bounded
// number of runs. Returns the smallest plan that still fails.
func ShrinkCrashPlan(plan CrashPlan, maxRuns int) CrashPlan {
	fails := func(p CrashPlan) bool {
		if maxRuns <= 0 {
			return false
		}
		maxRuns--
		_, err := RunCrashPlan(p)
		return err != nil
	}
	best := plan
	// Halve the script while the failure persists.
	for best.Ops > 1 {
		cand := best
		cand.Ops = best.Ops / 2
		if !fails(cand) {
			break
		}
		best = cand
	}
	// Then walk down in single steps.
	for best.Ops > 1 {
		cand := best
		cand.Ops = best.Ops - 1
		if !fails(cand) {
			break
		}
		best = cand
	}
	// Drop extra faults one at a time.
	for i := 0; i < len(best.Faults); {
		cand := best
		cand.Faults = append(append([]faultfs.Fault(nil), best.Faults[:i]...), best.Faults[i+1:]...)
		if fails(cand) {
			best = cand
		} else {
			i++
		}
	}
	return best
}
