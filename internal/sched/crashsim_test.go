package sched

import (
	"os"
	"strings"
	"testing"

	"mlcd/internal/faultfs"
	"mlcd/internal/search"
)

// TestCrashPlanFaultFree: a plan with no faults runs the whole script,
// acks everything, and upholds every invariant.
func TestCrashPlanFaultFree(t *testing.T) {
	rep, err := RunCrashPlan(CrashPlan{Seed: 1, Ops: 60, MaxRecords: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Crashed || rep.Phase != "none" {
		t.Fatalf("fault-free run crashed: %+v", rep)
	}
	if rep.AckedSubs == 0 || rep.AckedProbes == 0 || rep.AckedDones == 0 {
		t.Fatalf("script too tame: %+v", rep)
	}
	if rep.TotalFSOps < 60 {
		t.Fatalf("suspiciously few FS ops: %+v", rep)
	}
}

// TestCrashPlanEveryPoint is the in-package mini-storm: one seed,
// every single FS operation as the crash point, all invariants. The
// CI-scale storm in cmd/crashstorm runs many seeds; this pins the
// mechanism into tier-1.
func TestCrashPlanEveryPoint(t *testing.T) {
	base := CrashPlan{Seed: 42, Ops: 60, MaxRecords: 6}
	rehearsal, err := RunCrashPlan(base)
	if err != nil {
		t.Fatal(err)
	}
	phases := map[string]int{}
	for at := int64(1); at <= rehearsal.TotalFSOps; at++ {
		plan := base
		plan.CrashAtOp = at
		plan.CrashSeed = at // vary the torn tail too
		rep, err := RunCrashPlan(plan)
		if err != nil {
			t.Fatalf("crash at op %d (phase %s): %v", at, rep.Phase, err)
		}
		if !rep.Crashed {
			t.Fatalf("crash at op %d never fired (total ops %d)", at, rep.TotalFSOps)
		}
		phases[rep.Phase]++
	}
	for _, phase := range []string{"append", "rotation", "compaction"} {
		if phases[phase] == 0 {
			t.Fatalf("no crash point exercised the %s phase: %v", phase, phases)
		}
	}
}

// TestCrashPlanWithDiskFaults: crashes layered over a flaky disk
// (periodic EIO and short writes) still uphold the contract.
func TestCrashPlanWithDiskFaults(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		plan := CrashPlan{
			Seed: seed, Ops: 50, MaxRecords: 5,
			CrashAtOp: 40 + seed*7, CrashSeed: seed,
			Faults: []faultfs.Fault{
				{Op: faultfs.OpWrite, Path: "seg-", Mode: faultfs.ModeShort, Nth: 3, Keep: 2},
				{Op: faultfs.OpSync, Path: "seg-", Mode: faultfs.ModeSyncFail, Nth: 5},
			},
		}
		if rep, err := RunCrashPlan(plan); err != nil {
			t.Fatalf("seed %d: %+v: %v", seed, rep, err)
		}
	}
}

// --- Negative tests: every invariant checker must fire on a violation. ---

func mkState(subs []RecoveredSub, probes []RecoveredProbe) JournalState {
	return JournalState{Subs: subs, Probes: probes}
}

func TestCheckUniqueSubsFires(t *testing.T) {
	st := mkState([]RecoveredSub{{ID: "job-0001"}, {ID: "job-0001"}}, nil)
	if err := checkUniqueSubs(st); err == nil || !strings.Contains(err.Error(), "unique-subs") {
		t.Fatalf("duplicate sub not caught: %v", err)
	}
}

func TestCheckNoAckedSubLostFires(t *testing.T) {
	o := newSimOracle()
	o.ackedSubs["job-0001"] = true
	if err := checkNoAckedSubLost(o, mkState(nil, nil)); err == nil || !strings.Contains(err.Error(), "no-acked-sub-lost") {
		t.Fatalf("lost acked sub not caught: %v", err)
	}
	// A shed-but-finished sub is NOT a violation.
	o.triedDones["job-0001"] = true
	if err := checkNoAckedSubLost(o, mkState(nil, nil)); err != nil {
		t.Fatalf("legitimately compacted sub flagged: %v", err)
	}
}

func TestCheckNoAckedTerminalLostFires(t *testing.T) {
	o := newSimOracle()
	o.ackedDones["job-0001"] = StatusDone
	live := mkState([]RecoveredSub{{ID: "job-0001"}}, nil) // Status "" = live
	if err := checkNoAckedTerminalLost(o, live); err == nil || !strings.Contains(err.Error(), "no-acked-terminal-lost") {
		t.Fatalf("resurrected finished job not caught: %v", err)
	}
	flipped := mkState([]RecoveredSub{{ID: "job-0001", Status: StatusFailed}}, nil)
	if err := checkNoAckedTerminalLost(o, flipped); err == nil {
		t.Fatal("flipped terminal status not caught")
	}
	ok := mkState([]RecoveredSub{{ID: "job-0001", Status: StatusDone}}, nil)
	if err := checkNoAckedTerminalLost(o, ok); err != nil {
		t.Fatalf("correct terminal flagged: %v", err)
	}
}

func TestCheckAckedProbesSurviveFires(t *testing.T) {
	o := newSimOracle()
	o.ackedProbes[probeKey("resnet-cifar10", "c5.4xlarge", 4)] = true
	if err := checkAckedProbesSurvive(o, mkState(nil, nil)); err == nil || !strings.Contains(err.Error(), "acked-probes-survive") {
		t.Fatalf("lost probe not caught: %v", err)
	}
	st := mkState(nil, []RecoveredProbe{{
		Job:         "resnet-cifar10",
		Observation: search.SavedObservation{Type: "c5.4xlarge", Nodes: 4},
	}})
	if err := checkAckedProbesSurvive(o, st); err != nil {
		t.Fatalf("surviving probe flagged: %v", err)
	}
}

func TestCheckRawSubmitRecordsFires(t *testing.T) {
	mem := faultfs.NewMem()
	if err := mem.MkdirAll(crashSimDir, 0o755); err != nil {
		t.Fatal(err)
	}
	// The ID-reuse disaster: one ID, two different submissions.
	lines := `{"type":"submit","id":"job-0001","job":"a","tenant":"t1"}
{"type":"submit","id":"job-0001","job":"b","tenant":"t2"}
`
	f, err := mem.OpenFile(segPath(crashSimDir, 1), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte(lines)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := checkRawSubmitRecords(mem); err == nil || !strings.Contains(err.Error(), "raw-records") {
		t.Fatalf("ID reuse not caught: %v", err)
	}
}

func TestCheckCompactionIdempotentFires(t *testing.T) {
	a := mkState([]RecoveredSub{{ID: "job-0001"}}, nil)
	b := mkState(nil, nil)
	if err := checkCompactionIdempotent(a, b, b); err == nil || !strings.Contains(err.Error(), "compaction-idempotence") {
		t.Fatalf("dropped live sub not caught: %v", err)
	}
	if err := checkCompactionIdempotent(a, a, b); err == nil {
		t.Fatal("second-compact drift not caught")
	}
	if err := checkCompactionIdempotent(a, a, a); err != nil {
		t.Fatalf("stable state flagged: %v", err)
	}
}

// TestShrinkCrashPlan: shrinking a passing plan returns it unchanged
// within bounds; shrinking preserves failure on a plan made to fail by
// an always-on fault paired with a checker violation is hard to fake
// here, so instead verify the mechanics: the shrinker only ever
// returns plans that still fail, or the original.
func TestShrinkCrashPlan(t *testing.T) {
	// A passing plan: the shrinker's halving probe fails (plan passes),
	// so the original comes back untouched.
	plan := CrashPlan{Seed: 3, Ops: 40, MaxRecords: 8}
	got := ShrinkCrashPlan(plan, 10)
	if got.Ops != plan.Ops || len(got.Faults) != len(plan.Faults) {
		t.Fatalf("passing plan was mutated: %+v", got)
	}
	// Budget zero: no runs at all, plan unchanged.
	got = ShrinkCrashPlan(plan, 0)
	if got.Ops != plan.Ops {
		t.Fatalf("zero-budget shrink mutated plan: %+v", got)
	}
}
