package sched

import (
	"path/filepath"
	"testing"

	"mlcd/internal/mlcdsys"
)

// A restarted scheduler must come back fleet-warm: the journal's probes
// prime the cache during replay, and the prior is rebuilt from them
// before the worker pool starts — the first search after a crash starts
// from everything the fleet had already paid to learn.
func TestFleetPriorRebuiltFromJournalReplay(t *testing.T) {
	journalPath := filepath.Join(t.TempDir(), "sched.journal")

	a, err := New(newTestSystem(t), Config{JournalPath: journalPath, FleetPrior: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.FleetPrior().KeyCount() != 0 {
		t.Fatal("fresh scheduler must start with an empty prior")
	}
	job, err := a.Submit("resnet-cifar10", "acme", mlcdsys.Requirements{Budget: 100})
	if err != nil {
		t.Fatal(err)
	}
	awaitStatus(t, a, job.ID, StatusDone)
	learned := a.FleetPrior()
	if learned.KeyCount() == 0 {
		t.Fatal("finished job must teach the prior")
	}
	a.Close()

	b, err := New(newTestSystem(t), Config{JournalPath: journalPath, FleetPrior: true})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	recovered := b.FleetPrior()
	if recovered.KeyCount() == 0 {
		t.Fatal("replayed journal must rebuild the prior before the first submission")
	}
	le, err := learned.Encode()
	if err != nil {
		t.Fatal(err)
	}
	re, err := recovered.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(le) != string(re) {
		t.Fatalf("recovered prior differs from the learned one:\n%s\nvs\n%s", re, le)
	}
}

// With the feature off every knob is inert: no prior is learned, served,
// or installable — the bit-identity guarantee's control-plane half.
func TestFleetPriorOffIsInert(t *testing.T) {
	s, err := New(newTestSystem(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	job, err := s.Submit("resnet-cifar10", "acme", mlcdsys.Requirements{Budget: 100})
	if err != nil {
		t.Fatal(err)
	}
	awaitStatus(t, s, job.ID, StatusDone)
	if s.FleetPrior() != nil {
		t.Fatal("feature off must never serve a prior")
	}
	s.RebuildFleetPrior()
	if s.FleetPrior() != nil {
		t.Fatal("RebuildFleetPrior must be a no-op with the feature off")
	}
}
