package sched

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"unicode/utf8"

	"mlcd/internal/search"
)

// FuzzReplayJournal feeds arbitrary bytes to the journal replayer: it
// must never panic, whatever garbage a crashed or truncated file left
// behind, and whatever it recovers must be internally consistent.
func FuzzReplayJournal(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte(`{"type":"submit","id":"job-0001","job":"resnet-cifar10","tenant":"acme","budget_usd":100}` + "\n"))
	f.Add([]byte(`{"type":"probe","job":"resnet-cifar10","observation":{"type":"c5.4xlarge","nodes":4,"throughput_samples_per_sec":250},"duration_sec":600,"cost_usd":2.18}` + "\n"))
	f.Add([]byte(`{"type":"submit","id":"job-0002"}` + "\n" + `{"type":"done","id":"job-0002","status":"done"}` + "\n"))
	f.Add([]byte("{\"type\":\"submit\",\"id\":\"job-0003\"}\n{\"type\":\"sub")) // torn tail
	// A probe record torn mid-observation — the crash-mid-append shape the
	// scheduler's warm start must shrug off.
	f.Add([]byte(`{"type":"submit","id":"job-0004","job":"resnet-cifar10","budget_usd":100}` + "\n" +
		`{"type":"probe","job":"resnet-cifar10","observation":{"type":"c5.4xlarge","nodes":4,"throughput_samples_per_sec":250},"duration_sec":600,"cost_usd":2.18}` + "\n" +
		`{"type":"probe","job":"resnet-cifar10","observation":{"type":"c5.4xlarge","nodes":8,"throughput`))
	f.Add([]byte("\x00\xff garbage\n"))
	f.Add([]byte(`{"type":"done","id":"job-9999","status":"failed","error":"boom"}` + "\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "journal.jsonl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := ReplayJournal(path)
		if err != nil {
			return // rejecting corrupt journals is fine; panicking is not
		}
		if st.MaxID < 0 {
			t.Fatalf("replay yielded negative MaxID %d", st.MaxID)
		}
	})
}

// FuzzReplaySegmented feeds arbitrary bytes to the SEGMENTED replayer —
// a snapshot plus two segment files, any of which a crash or a bad disk
// may have corrupted anywhere. The replayer must recover or reject
// cleanly, never panic, never resurrect a torn record as a duplicate
// submission, and must be deterministic: replaying the same surviving
// bytes twice yields the same state.
func FuzzReplaySegmented(f *testing.F) {
	snap := []byte(`{"version":1,"through":1,"max_id":2,"subs":[{"ID":"job-0001","Job":"resnet-cifar10","Tenant":"acme","BudgetUSD":100}]}`)
	seg := []byte(`{"type":"submit","id":"job-0002","job":"resnet-cifar10","tenant":"acme","budget_usd":100}` + "\n")
	segDone := []byte(`{"type":"done","id":"job-0002","status":"done"}` + "\n")
	f.Add([]byte(""), []byte(""), []byte(""))
	f.Add(snap, seg, segDone)
	f.Add(snap, seg, []byte(`{"type":"sub`))                          // torn tail in the last segment
	f.Add(snap[:40], seg, segDone)                                    // torn snapshot
	f.Add(snap, append(append([]byte{}, seg...), seg...), []byte("")) // duplicate submit lines
	f.Add([]byte(`{"version":1,"through":9,"max_id":0}`), seg, segDone)
	f.Add([]byte("\x00\xff"), []byte("\x00garbage\n"), []byte("{}\n"))

	f.Fuzz(func(t *testing.T, snapshot, seg2, seg3 []byte) {
		dir := t.TempDir()
		for _, fpart := range []struct {
			name string
			data []byte
		}{
			{snapshotName, snapshot},
			{"seg-00000002.jnl", seg2},
			{"seg-00000003.jnl", seg3},
		} {
			if err := os.WriteFile(filepath.Join(dir, fpart.name), fpart.data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		st, _, err := ReplaySegmented(dir)
		if err != nil {
			// Rejecting corruption is fine; panicking or limping on with a
			// half-applied state visible to the caller is not (the scheduler
			// refuses to start on a replay error).
			return
		}
		if st.MaxID < 0 {
			t.Fatalf("negative MaxID %d", st.MaxID)
		}
		seen := make(map[string]bool, len(st.Subs))
		for _, sub := range st.Subs {
			if seen[sub.ID] {
				t.Fatalf("replay resurrected duplicate submission %q", sub.ID)
			}
			seen[sub.ID] = true
		}
		// Determinism: the same bytes replay to the same state.
		st2, _, err := ReplaySegmented(dir)
		if err != nil {
			t.Fatalf("second replay of identical bytes failed: %v", err)
		}
		if len(st2.Subs) != len(st.Subs) || len(st2.Probes) != len(st.Probes) || st2.MaxID != st.MaxID {
			t.Fatalf("replay not deterministic: %+v vs %+v", st, st2)
		}
	})
}

// FuzzJournalRoundTrip appends fuzzer-chosen records through the real
// journal (marshal + fsync) and replays them: valid records must survive
// the trip with every field intact.
func FuzzJournalRoundTrip(f *testing.F) {
	f.Add("job-0007", "resnet-cifar10", "acme", 100.0, 9.0, "c5.4xlarge", 4, 250.0, 600.0, 2.18, "done", "")
	f.Add("job-0001", "alexnet-cifar10", "", 0.0, 0.0, "", 0, -1.0, 0.0, 0.0, "failed", "quota exhausted")
	f.Add("", "", "", -1.0, -1.0, "weird\ntype", -5, 0.0, -2.0, -3.0, "bogus", "multi\nline")

	f.Fuzz(func(t *testing.T, id, jobName, tenant string, budget, deadline float64,
		typ string, nodes int, tput, dur, cost float64, status, errMsg string) {
		if !utf8.ValidString(id) || !utf8.ValidString(jobName) || !utf8.ValidString(tenant) ||
			!utf8.ValidString(typ) || !utf8.ValidString(status) || !utf8.ValidString(errMsg) {
			// encoding/json replaces invalid UTF-8 on marshal, so byte
			// fidelity is out of scope for those inputs.
			return
		}
		for _, v := range []float64{budget, deadline, tput, dur, cost} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return // JSON cannot represent non-finite numbers
			}
		}
		path := filepath.Join(t.TempDir(), "journal.jsonl")
		jl, err := OpenJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		records := []journalRecord{
			{Type: "submit", ID: id, Job: jobName, Tenant: tenant, BudgetUSD: budget, DeadlineHours: deadline},
			{Type: "probe", Job: jobName, Observation: &search.SavedObservation{Type: typ, Nodes: nodes, Throughput: tput}, DurationSec: dur, CostUSD: cost},
			{Type: "done", ID: id, Status: Status(status), Error: errMsg},
		}
		for _, rec := range records {
			if err := jl.append(rec); err != nil {
				t.Fatalf("append %+v: %v", rec, err)
			}
		}
		if err := jl.Close(); err != nil {
			t.Fatal(err)
		}

		st, err := ReplayJournal(path)
		if err != nil {
			t.Fatalf("replaying journal the scheduler itself wrote: %v", err)
		}
		if len(st.Subs) != 1 || len(st.Probes) != 1 {
			t.Fatalf("replay = %+v", st)
		}
		sub := st.Subs[0]
		if sub.ID != id || sub.Job != jobName || sub.Tenant != tenant ||
			sub.BudgetUSD != budget || sub.DeadlineHours != deadline {
			t.Fatalf("submit round trip: wrote %+v, read %+v", records[0], sub)
		}
		if sub.Status != Status(status) || sub.Error != errMsg {
			t.Fatalf("done round trip: wrote status=%q err=%q, read %+v", status, errMsg, sub)
		}
		probe := st.Probes[0]
		if probe.Job != jobName || probe.Observation.Type != typ ||
			probe.Observation.Nodes != nodes || probe.Observation.Throughput != tput ||
			probe.DurationSec != dur || probe.CostUSD != cost {
			t.Fatalf("probe round trip: wrote %+v, read %+v", records[1], probe)
		}
	})
}
