package sched

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"

	"mlcd/internal/faultfs"
	"mlcd/internal/search"
)

// The journal is the scheduler's crash-safety story: an append-only
// JSONL file recording every submission, every completed profiling
// probe (in search.SavedObservation's stable wire form), and every
// terminal status. A restarted scheduler replays it to re-enqueue jobs
// that never reached a terminal state and to prime the shared profiling
// cache, so recovered searches warm-start instead of re-profiling.
//
// Record kinds:
//
//	{"type":"submit","id":"job-0001","job":"resnet-cifar10","tenant":"acme","budget_usd":100}
//	{"type":"probe","job":"resnet-cifar10","observation":{...},"duration_sec":600,"cost_usd":2.18}
//	{"type":"done","id":"job-0001","status":"done"}
//
// Each record is fsynced before the triggering operation is considered
// durable. A torn final line (crash mid-write) is tolerated on replay.
type journalRecord struct {
	Type string `json:"type"` // "submit" | "probe" | "done"

	// submit / done
	ID string `json:"id,omitempty"`

	// submit (Job is also set on probe records: the menu name whose
	// workload the observation belongs to)
	Job           string  `json:"job,omitempty"`
	Tenant        string  `json:"tenant,omitempty"`
	BudgetUSD     float64 `json:"budget_usd,omitempty"`
	DeadlineHours float64 `json:"deadline_hours,omitempty"`

	// probe
	Observation *search.SavedObservation `json:"observation,omitempty"`
	DurationSec float64                  `json:"duration_sec,omitempty"`
	CostUSD     float64                  `json:"cost_usd,omitempty"`

	// done
	Status Status `json:"status,omitempty"`
	Error  string `json:"error,omitempty"`
}

// idSeq extracts the numeric sequence from a job ID ("job-0042" → 42).
// Sharded schedulers prefix their IDs ("s3-job-0042"), so the sequence
// is whatever follows the final dash; 0 when the suffix is not numeric.
func idSeq(id string) int {
	i := strings.LastIndexByte(id, '-')
	if i < 0 || i == len(id)-1 {
		return 0
	}
	n, err := strconv.Atoi(id[i+1:])
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// journalSink is what the scheduler appends to: the single-file Journal
// or the rotating SegmentedJournal.
type journalSink interface {
	append(rec journalRecord) error
	Close() error
}

// Journal is an open, append-only scheduler journal.
type Journal struct {
	mu     sync.Mutex
	f      faultfs.File
	w      *bufio.Writer
	off    int64 // bytes of complete, newline-terminated records
	closed bool
	wedged bool // failed rollback left torn bytes mid-file: fail stop
}

// OpenJournal opens (creating if needed) the journal at path for
// appending, on the real filesystem.
func OpenJournal(path string) (*Journal, error) {
	return OpenJournalFS(faultfs.OS{}, path)
}

// OpenJournalFS is OpenJournal over an injectable filesystem — the
// storage-fault test hook. A torn final line — the partial record of an
// append the crash interrupted — is truncated away first: without the
// repair the next record would concatenate onto the torn bytes and a
// later replay would reject the journal as mid-file corruption.
func OpenJournalFS(fsys faultfs.FS, path string) (*Journal, error) {
	if err := repairTornTail(fsys, path); err != nil {
		return nil, fmt.Errorf("sched: repairing journal tail: %w", err)
	}
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sched: opening journal: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("sched: sizing journal: %w", err)
	}
	return &Journal{f: f, w: bufio.NewWriter(f), off: info.Size()}, nil
}

// repairTornTail truncates path back to its last newline when the file
// does not end with one. The dropped bytes are a record whose fsync
// never completed, so the operation it covered was never acknowledged
// as durable — discarding it is the correct recovery, not data loss.
func repairTornTail(fsys faultfs.FS, path string) error {
	f, err := fsys.OpenFile(path, os.O_RDWR, 0)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	info, err := f.Stat()
	if err != nil {
		return err
	}
	size := info.Size()
	if size == 0 {
		return nil
	}
	last := make([]byte, 1)
	if _, err := f.ReadAt(last, size-1); err != nil {
		return err
	}
	if last[0] == '\n' {
		return nil
	}
	// Scan backwards in chunks for the last newline; everything after it
	// is the torn record.
	const chunk = 32 * 1024
	pos := size - 1 // the final byte is known not to be a newline
	for pos > 0 {
		n := int64(chunk)
		if pos < n {
			n = pos
		}
		buf := make([]byte, n)
		if _, err := f.ReadAt(buf, pos-n); err != nil {
			return err
		}
		if i := bytes.LastIndexByte(buf, '\n'); i >= 0 {
			return f.Truncate(pos - n + int64(i) + 1)
		}
		pos -= n
	}
	return f.Truncate(0)
}

// append writes one record and fsyncs it. A failed write is rolled
// back to the last record boundary (see SegmentedJournal.append for the
// full contract); a failed fsync refuses the operation but needs no
// rollback.
func (jl *Journal) append(rec journalRecord) error {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.closed {
		return errors.New("sched: journal is closed")
	}
	if jl.wedged {
		return errors.New("sched: journal wedged by failed write rollback; reopen to repair")
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("sched: encoding journal record: %w", err)
	}
	b = append(b, '\n')
	if _, err := jl.w.Write(b); err != nil {
		jl.rollbackLocked()
		return fmt.Errorf("sched: appending journal record: %w", err)
	}
	if err := jl.w.Flush(); err != nil {
		jl.rollbackLocked()
		return fmt.Errorf("sched: flushing journal: %w", err)
	}
	jl.off += int64(len(b))
	if err := jl.f.Sync(); err != nil {
		return fmt.Errorf("sched: syncing journal: %w", err)
	}
	return nil
}

// rollbackLocked truncates torn bytes of a failed append and replaces
// the poisoned buffered writer. Callers hold jl.mu.
func (jl *Journal) rollbackLocked() {
	jl.w = bufio.NewWriter(jl.f)
	if err := jl.f.Truncate(jl.off); err != nil {
		jl.wedged = true
	}
}

// Close flushes and closes the journal. Idempotent.
func (jl *Journal) Close() error {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.closed {
		return nil
	}
	jl.closed = true
	if err := jl.w.Flush(); err != nil {
		_ = jl.f.Close()
		return err
	}
	return jl.f.Close()
}

// RecoveredSub is one journaled submission with the last status the
// journal proves: "" means it never reached a terminal state and must be
// re-enqueued on recovery.
type RecoveredSub struct {
	ID            string
	Job           string // menu name
	Tenant        string
	BudgetUSD     float64
	DeadlineHours float64
	Status        Status // terminal status, or "" if still owed work
	Error         string
}

// RecoveredProbe is one journaled measurement, keyed by menu name.
type RecoveredProbe struct {
	Job         string
	Observation search.SavedObservation
	DurationSec float64
	CostUSD     float64
}

// JournalState is what a replay yields.
type JournalState struct {
	Subs   []RecoveredSub // submission order
	Probes []RecoveredProbe
	MaxID  int // highest numeric job-NNNN suffix seen
}

// ReplayJournal reads the journal at path on the real filesystem. A
// missing file is an empty journal. A torn final line — the tail of a
// crashed append — is ignored; corruption anywhere earlier is an error,
// since records after it would silently vanish.
func ReplayJournal(path string) (JournalState, error) {
	return ReplayJournalFS(faultfs.OS{}, path)
}

// ReplayJournalFS is ReplayJournal over an injectable filesystem.
func ReplayJournalFS(fsys faultfs.FS, path string) (JournalState, error) {
	var st JournalState
	f, err := fsys.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return st, nil
	}
	if err != nil {
		return st, fmt.Errorf("sched: opening journal for replay: %w", err)
	}
	defer func() { _ = f.Close() }()

	index := make(map[string]int) // id → position in st.Subs
	if _, err := scanRecords(f, func(rec journalRecord) {
		applyRecord(&st, index, rec)
	}); err != nil {
		return st, err
	}
	return st, nil
}

// applyRecord folds one decoded record into st; index maps submission
// IDs to positions in st.Subs so "done" records find their submission.
func applyRecord(st *JournalState, index map[string]int, rec journalRecord) {
	switch rec.Type {
	case "submit":
		// A duplicate submit ID is legitimate journal history: a client
		// whose first submit failed after the record landed (sync error,
		// crash before the ack) retries and the scheduler re-appends. The
		// first record wins; folding the duplicate into a SECOND Subs
		// entry would re-enqueue — and re-run — the job twice.
		if _, dup := index[rec.ID]; dup {
			if n := idSeq(rec.ID); n > st.MaxID {
				st.MaxID = n
			}
			return
		}
		index[rec.ID] = len(st.Subs)
		st.Subs = append(st.Subs, RecoveredSub{
			ID:            rec.ID,
			Job:           rec.Job,
			Tenant:        rec.Tenant,
			BudgetUSD:     rec.BudgetUSD,
			DeadlineHours: rec.DeadlineHours,
		})
		if n := idSeq(rec.ID); n > st.MaxID {
			st.MaxID = n
		}
	case "probe":
		if rec.Observation != nil {
			st.Probes = append(st.Probes, RecoveredProbe{
				Job:         rec.Job,
				Observation: *rec.Observation,
				DurationSec: rec.DurationSec,
				CostUSD:     rec.CostUSD,
			})
		}
	case "done":
		if i, ok := index[rec.ID]; ok {
			st.Subs[i].Status = rec.Status
			st.Subs[i].Error = rec.Error
		}
	}
}

// scanRecords decodes JSONL journal records from r, invoking apply per
// record, and returns how many records it applied. A torn final line —
// the tail of a crashed append — is tolerated; an undecodable record
// followed by more data is mid-file corruption and an error.
func scanRecords(r io.Reader, apply func(journalRecord)) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var torn bool
	n := 0
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if torn {
			return n, fmt.Errorf("sched: journal corrupt: undecodable record followed by %q", string(line))
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			torn = true // only tolerable if nothing follows
			continue
		}
		apply(rec)
		n++
	}
	if err := sc.Err(); err != nil && !errors.Is(err, io.EOF) {
		return n, fmt.Errorf("sched: replaying journal: %w", err)
	}
	return n, nil
}
