package sched

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"mlcd/internal/faultfs"
)

// The two benchmarks below are a matched pair gated by `benchgate
// compare -pair` (see scripts/bench_compare.sh): the fault-injection
// refactor routed every journal byte through the faultfs.FS interface,
// and the pair proves that in the fault-free production configuration
// (faultfs.OS, a zero-cost passthrough) the indirection costs at most
// 2% over a hand-written append loop. Both run the identical record,
// write, flush, fsync cycle under a mutex — the only difference is the
// interface hop.

// benchJournalDir puts the journal on tmpfs when the host has one:
// on rotating or virtualised storage a single fsync costs ~100µs with
// tens of percent of run-to-run jitter, which would drown the
// nanosecond-scale interface hop the pair gate measures. On tmpfs the
// fsync is near-free and stable, so the write/flush/indirection path —
// the part the refactor actually touched — dominates the timing.
func benchJournalDir(b *testing.B) string {
	if info, err := os.Stat("/dev/shm"); err == nil && info.IsDir() {
		dir, err := os.MkdirTemp("/dev/shm", "mlcd-journal-bench-*")
		if err == nil {
			b.Cleanup(func() { _ = os.RemoveAll(dir) })
			return dir
		}
	}
	return b.TempDir()
}

func benchJournalRecord() journalRecord {
	return journalRecord{
		Type:      "submit",
		ID:        "job-0042",
		Job:       "resnet-cifar10",
		Tenant:    "acme",
		BudgetUSD: 100,
	}
}

// BenchmarkJournalAppendDirect is the pre-faultfs append path: a raw
// *os.File behind a bufio.Writer, no filesystem interface in between.
// It exists only as the baseline for BenchmarkJournalAppend.
func BenchmarkJournalAppendDirect(b *testing.B) {
	path := filepath.Join(benchJournalDir(b), "journal.jnl")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = f.Close() }()
	w := bufio.NewWriter(f)
	var mu sync.Mutex
	rec := benchJournalRecord()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mu.Lock()
		buf, err := json.Marshal(rec)
		if err != nil {
			mu.Unlock()
			b.Fatal(err)
		}
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			mu.Unlock()
			b.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			mu.Unlock()
			b.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			mu.Unlock()
			b.Fatal(err)
		}
		mu.Unlock()
	}
}

// BenchmarkJournalAppend is the same workload through the production
// journal: OpenJournalFS over faultfs.OS, so every Write, Flush, and
// Sync crosses the injectable-filesystem interface.
func BenchmarkJournalAppend(b *testing.B) {
	path := filepath.Join(benchJournalDir(b), "journal.jnl")
	j, err := OpenJournalFS(faultfs.OS{}, path)
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = j.Close() }()
	rec := benchJournalRecord()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := j.append(rec); err != nil {
			b.Fatal(err)
		}
	}
}
