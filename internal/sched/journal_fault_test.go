package sched

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"mlcd/internal/faultfs"
	"mlcd/internal/mlcdsys"
)

// newFaultScheduler builds a scheduler journaling to a segmented
// journal on an injectable in-memory filesystem.
func newFaultScheduler(t *testing.T, in *faultfs.Injector) *Scheduler {
	t.Helper()
	s, err := New(newTestSystem(t), Config{
		Workers:    1,
		JournalDir: "jdir",
		FS:         in,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestJournalAppendErrorFailsSubmit is the no-silent-ack satellite: a
// failed fsync must refuse the submission with ErrJournal, count into
// mlcd_sched_journal_append_errors_total, and advance the error streak;
// the next successful append resets the streak.
func TestJournalAppendErrorFailsSubmit(t *testing.T) {
	in := faultfs.NewInjector(faultfs.NewMem(), nil)
	s := newFaultScheduler(t, in)
	defer s.Close()

	in.SetPlan([]faultfs.Fault{{Op: faultfs.OpSync, Path: "seg-", Mode: faultfs.ModeSyncFail, Nth: 1}})
	_, err := s.Submit("resnet-cifar10", "acme", mlcdsys.Requirements{Budget: 100})
	if !errors.Is(err, ErrJournal) {
		t.Fatalf("submit with failing fsync = %v, want ErrJournal", err)
	}
	if !errors.Is(err, syscall.EIO) || !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("cause not preserved through ErrJournal: %v", err)
	}
	errs := s.sys.Metrics().Counter("mlcd_sched_journal_append_errors_total", "").Value()
	if errs != 1 {
		t.Fatalf("journal_append_errors = %v, want 1", errs)
	}
	if s.JournalErrStreak() != 1 {
		t.Fatalf("streak = %d, want 1", s.JournalErrStreak())
	}
	if _, ok := s.Get("job-0001"); ok {
		t.Fatal("refused submission is visible as a job — a silent ack")
	}

	// The disk recovers: the next submission succeeds and resets the
	// streak.
	job, err := s.Submit("resnet-cifar10", "acme", mlcdsys.Requirements{Budget: 100})
	if err != nil {
		t.Fatal(err)
	}
	if s.JournalErrStreak() != 0 {
		t.Fatalf("streak after success = %d, want 0", s.JournalErrStreak())
	}
	// The ID consumed by the refused submission is never reused: its
	// record may still have landed durably (the write preceded the
	// failed fsync), and a reused ID would bind two identities to one
	// journal record.
	if job.ID != "job-0002" {
		t.Fatalf("post-failure ID = %s, want job-0002 (job-0001 stays consumed)", job.ID)
	}
	awaitStatus(t, s, job.ID, StatusDone)
}

// TestJournalIDNotResurrectedAcrossRestart pins the other half of the
// ID-reuse fix: when the refused submission's record DID land durably, a
// restarted scheduler must not hand its ID to a new submission.
func TestJournalIDNotResurrectedAcrossRestart(t *testing.T) {
	mem := faultfs.NewMem()
	in := faultfs.NewInjector(mem, nil)
	s := newFaultScheduler(t, in)
	in.SetPlan([]faultfs.Fault{{Op: faultfs.OpSync, Path: "seg-", Mode: faultfs.ModeSyncFail, Nth: 1}})
	if _, err := s.Submit("resnet-cifar10", "acme", mlcdsys.Requirements{Budget: 100}); !errors.Is(err, ErrJournal) {
		t.Fatal("first submit should have been refused")
	}
	in.Heal()
	s.Close() // flushes; the refused submit's bytes reach the file

	s2 := newFaultScheduler(t, faultfs.NewInjector(mem, nil))
	defer s2.Close()
	// job-0001's submit record survived even though the client saw an
	// error; MaxID replay must keep its sequence consumed.
	job, err := s2.Submit("resnet-cifar10", "other", mlcdsys.Requirements{Budget: 100})
	if err != nil {
		t.Fatal(err)
	}
	if job.ID == "job-0001" {
		t.Fatal("restart reused the refused submission's journal identity")
	}
	awaitStatus(t, s2, job.ID, StatusDone)
}

// TestReplayDeduplicatesSubmitRecords: duplicate submit IDs are
// legitimate history (client retry after an append that failed post-
// write); replay must fold them into ONE submission, not two runs.
func TestReplayDeduplicatesSubmitRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	lines := `{"type":"submit","id":"job-0001","job":"resnet-cifar10","tenant":"acme","budget_usd":100}
{"type":"submit","id":"job-0001","job":"resnet-cifar10","tenant":"acme","budget_usd":100}
{"type":"submit","id":"job-0002","job":"resnet-cifar10","tenant":"beta","budget_usd":50}
`
	if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := ReplayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Subs) != 2 {
		t.Fatalf("replayed %d submissions, want 2 (duplicate folded)", len(st.Subs))
	}
	seen := map[string]bool{}
	for _, sub := range st.Subs {
		if seen[sub.ID] {
			t.Fatalf("duplicate recovered submission %s", sub.ID)
		}
		seen[sub.ID] = true
	}
	if st.MaxID != 2 {
		t.Fatalf("MaxID = %d, want 2", st.MaxID)
	}
}

// TestProbeJournalHealthRecords: the liveness probe appends a durable
// no-op record that replay ignores and compaction sheds.
func TestProbeJournalHealthRecords(t *testing.T) {
	mem := faultfs.NewMem()
	in := faultfs.NewInjector(mem, nil)
	s := newFaultScheduler(t, in)
	if err := s.ProbeJournal(); err != nil {
		t.Fatalf("healthy probe: %v", err)
	}

	in.SetPlan([]faultfs.Fault{{Op: faultfs.OpSync, Path: "seg-", Mode: faultfs.ModeSyncFail, Nth: 1, Persist: true}})
	for i := 1; i <= 3; i++ {
		if err := s.ProbeJournal(); !errors.Is(err, ErrJournal) {
			t.Fatalf("probe %d over dead disk = %v, want ErrJournal", i, err)
		}
		if s.JournalErrStreak() != i {
			t.Fatalf("streak after probe %d = %d", i, s.JournalErrStreak())
		}
	}
	in.Heal()
	if err := s.ProbeJournal(); err != nil || s.JournalErrStreak() != 0 {
		t.Fatalf("probe after heal = %v, streak %d", err, s.JournalErrStreak())
	}
	if err := s.CompactJournal(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Health records must not resurrect as state.
	st, _, err := ReplaySegmentedFS(mem, "jdir")
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Subs) != 0 || len(st.Probes) != 0 {
		t.Fatalf("health records leaked into state: %d subs, %d probes", len(st.Subs), len(st.Probes))
	}
	snap, err := readSnapshot(mem, "jdir")
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Subs) != 0 || len(snap.Probes) != 0 {
		t.Fatalf("health records survived compaction: %+v", snap)
	}
}

// TestProbeJournalNoJournal: a journal-less scheduler has nothing to
// fail — the probe is trivially healthy.
func TestProbeJournalNoJournal(t *testing.T) {
	s, err := New(newTestSystem(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.ProbeJournal(); err != nil {
		t.Fatalf("probe without journal = %v", err)
	}
}

// TestHasTenant: submissions and journal recovery both register the
// tenant; unknown tenants stay unknown.
func TestHasTenant(t *testing.T) {
	mem := faultfs.NewMem()
	s := newFaultScheduler(t, faultfs.NewInjector(mem, nil))
	if s.HasTenant("acme") {
		t.Fatal("tenant known before any submission")
	}
	job, err := s.Submit("resnet-cifar10", "acme", mlcdsys.Requirements{Budget: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !s.HasTenant("acme") || s.HasTenant("ghost") {
		t.Fatal("tenant tracking wrong after submit")
	}
	awaitStatus(t, s, job.ID, StatusDone)
	s.Close()

	s2 := newFaultScheduler(t, faultfs.NewInjector(mem, nil))
	defer s2.Close()
	if !s2.HasTenant("acme") {
		t.Fatal("tenant lost across journal recovery")
	}
}

// TestStaleSnapshotTmpCleared: a crash between writing snapshot.json.tmp
// and renaming it leaves the tmp behind; the next open must discard it.
func TestStaleSnapshotTmpCleared(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, snapshotName+".tmp")
	if err := os.WriteFile(stale, []byte(`{"version":1,"through":99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := OpenSegmented(SegmentedConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stale tmp still present: %v", err)
	}
	// And it never became state.
	snap, err := readSnapshot(faultfs.OS{}, dir)
	if err != nil || snap.Through != 0 {
		t.Fatalf("stale tmp leaked into snapshot: %+v, %v", snap, err)
	}
}

// TestJournalErrorMessageNamesStorage sanity-checks that the wrapped
// error still tells an operator WHERE it failed.
func TestJournalErrorMessageNamesStorage(t *testing.T) {
	in := faultfs.NewInjector(faultfs.NewMem(), nil)
	s := newFaultScheduler(t, in)
	defer s.Close()
	in.SetPlan([]faultfs.Fault{{Op: faultfs.OpWrite, Path: "seg-", Mode: faultfs.ModeENOSPC, Nth: 1}})
	_, err := s.Submit("resnet-cifar10", "acme", mlcdsys.Requirements{Budget: 100})
	if err == nil || !strings.Contains(err.Error(), "journal") {
		t.Fatalf("error hides the journal: %v", err)
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("ENOSPC identity lost: %v", err)
	}
}
