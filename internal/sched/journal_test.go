package sched

import (
	"os"
	"path/filepath"
	"testing"

	"mlcd/internal/search"
)

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sched.journal")
	jl, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	records := []journalRecord{
		{Type: "submit", ID: "job-0001", Job: "resnet-cifar10", Tenant: "acme", BudgetUSD: 100},
		{Type: "submit", ID: "job-0002", Job: "resnet-cifar10", Tenant: "globex", DeadlineHours: 9},
		{Type: "probe", Job: "resnet-cifar10", Observation: &search.SavedObservation{Type: "c5.4xlarge", Nodes: 3, Throughput: 42}, DurationSec: 600, CostUSD: 2.5},
		{Type: "done", ID: "job-0001", Status: StatusDone},
	}
	for _, rec := range records {
		if err := jl.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := jl.Close(); err != nil { // idempotent
		t.Fatal(err)
	}

	st, err := ReplayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Subs) != 2 || st.MaxID != 2 {
		t.Fatalf("state = %+v", st)
	}
	if st.Subs[0].Status != StatusDone || st.Subs[1].Status != "" {
		t.Fatalf("statuses = %q / %q", st.Subs[0].Status, st.Subs[1].Status)
	}
	if st.Subs[1].Tenant != "globex" || st.Subs[1].DeadlineHours != 9 {
		t.Fatalf("sub[1] = %+v", st.Subs[1])
	}
	if len(st.Probes) != 1 || st.Probes[0].Observation.Nodes != 3 || st.Probes[0].CostUSD != 2.5 {
		t.Fatalf("probes = %+v", st.Probes)
	}
}

func TestJournalMissingFileIsEmpty(t *testing.T) {
	st, err := ReplayJournal(filepath.Join(t.TempDir(), "nope.journal"))
	if err != nil || len(st.Subs) != 0 || len(st.Probes) != 0 {
		t.Fatalf("st=%+v err=%v", st, err)
	}
}

func TestJournalTornTailTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sched.journal")
	content := `{"type":"submit","id":"job-0001","job":"resnet-cifar10","budget_usd":100}
{"type":"probe","job":"resnet-cifar10","obser` // crashed mid-append
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := ReplayJournal(path)
	if err != nil {
		t.Fatalf("torn tail must be tolerated: %v", err)
	}
	if len(st.Subs) != 1 || st.Subs[0].ID != "job-0001" || st.Subs[0].Status != "" {
		t.Fatalf("state = %+v", st)
	}
}

// TestJournalTornTailRepairedOnOpen pins the append-after-crash story:
// reopening a journal whose final line is torn must truncate the torn
// bytes first, so new records never concatenate onto them and the
// *next* replay still parses. Without the repair the journal survives
// one crash but not two.
func TestJournalTornTailRepairedOnOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sched.journal")
	content := `{"type":"submit","id":"job-0001","job":"resnet-cifar10","budget_usd":100}
{"type":"probe","job":"resnet-cifar10","obser` // crashed mid-append
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	jl, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := jl.append(journalRecord{Type: "done", ID: "job-0001", Status: StatusDone}); err != nil {
		t.Fatal(err)
	}
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := ReplayJournal(path)
	if err != nil {
		t.Fatalf("journal corrupted by appending after a torn tail: %v", err)
	}
	if len(st.Subs) != 1 || st.Subs[0].Status != StatusDone {
		t.Fatalf("state = %+v", st)
	}
	if len(st.Probes) != 0 {
		t.Fatalf("torn probe resurrected: %+v", st.Probes)
	}
}

// TestJournalRepairWholeFileTorn covers the degenerate repair: a journal
// holding nothing but one torn line truncates to empty.
func TestJournalRepairWholeFileTorn(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sched.journal")
	if err := os.WriteFile(path, []byte(`{"type":"sub`), 0o644); err != nil {
		t.Fatal(err)
	}
	jl, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := ReplayJournal(path)
	if err != nil || len(st.Subs) != 0 || len(st.Probes) != 0 {
		t.Fatalf("st=%+v err=%v", st, err)
	}
}

func TestJournalMidFileCorruptionRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sched.journal")
	content := `{"type":"submit","id":"job-0001","job":"resnet-cifar10"}
NOT JSON AT ALL
{"type":"done","id":"job-0001","status":"done"}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayJournal(path); err == nil {
		t.Fatal("mid-file corruption must be an error, not silent data loss")
	}
}
