package sched

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"mlcd/internal/cloud"
	"mlcd/internal/mlcdsys"
	"mlcd/internal/profiler"
	"mlcd/internal/workload"
)

// goroutineCount reports the current goroutine count after giving the
// runtime a moment to retire goroutines that have already returned.
func goroutineCount() int {
	runtime.Gosched()
	return runtime.NumGoroutine()
}

// awaitGoroutines polls until the goroutine count drops back to at most
// want, failing with a full stack dump if it never does: the dump names
// the leaked goroutine outright.
func awaitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if goroutineCount() <= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines never returned to %d (now %d); stacks:\n%s",
		want, goroutineCount(), buf[:n])
}

// TestShutdownNoGoroutineLeak wedges a probe so hard the drain deadline
// expires, forcing Shutdown down its abort path — then verifies that
// once the wedged probe finally returns, every scheduler goroutine
// (workers, the drain watcher) exits. A scheduler that leaves goroutines
// behind after Shutdown would leak one worker per restart cycle in a
// long-lived daemon.
func TestShutdownNoGoroutineLeak(t *testing.T) {
	baseline := goroutineCount()

	gate := make(chan struct{})
	started := make(chan struct{}, 16)
	s, err := New(newTestSystem(t), Config{
		Workers: 2,
		ProfilerMiddleware: func(inner profiler.Profiler) profiler.Profiler {
			return profilerFunc(func(j workload.Job, d cloud.Deployment) profiler.Result {
				started <- struct{}{}
				<-gate
				return inner.Profile(j, d)
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit("resnet-cifar10", "acme", mlcdsys.Requirements{Budget: 100}); err != nil {
		t.Fatal(err)
	}
	<-started // the worker is now wedged mid-probe

	// The grace period expires while the probe is still stuck: Shutdown
	// must cancel the run and return without waiting for the worker.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want context.DeadlineExceeded", err)
	}

	// Un-wedge the probe. The cancelled context drains the search in a
	// handful of free steps and the worker must exit — along with every
	// goroutine the scheduler started.
	close(gate)
	for {
		select {
		case <-started: // later probes of the same drain, if any
			continue
		default:
		}
		break
	}
	awaitGoroutines(t, baseline)
}

// TestCloseNoGoroutineLeak is the graceful twin: a plain drain must also
// leave no scheduler goroutines behind.
func TestCloseNoGoroutineLeak(t *testing.T) {
	baseline := goroutineCount()
	s, err := New(newTestSystem(t), Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit("resnet-cifar10", "acme", mlcdsys.Requirements{Budget: 100}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	awaitGoroutines(t, baseline)
}
