package sched

import (
	"testing"

	"mlcd/internal/mlcdsys"
)

// TestConcurrentSearchesShareNothing runs two deployment searches at the
// same time through a two-worker scheduler and lets the race detector
// audit them. Each search clones the system's kernel template before
// fitting (core.Options ensures this); a regression that shares one
// kernel's hyperparameter state — or any other surrogate state — across
// concurrent FitMLE calls shows up here under `go test -race`.
func TestConcurrentSearchesShareNothing(t *testing.T) {
	s, err := New(newTestSystem(t), Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Different tenants and requirement shapes so the two searches take
	// different trajectories through the shared profiling cache while
	// overlapping in time.
	a, err := s.Submit("resnet-cifar10", "tenant-a", mlcdsys.Requirements{Budget: 100})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Submit("resnet-cifar10", "tenant-b", mlcdsys.Requirements{})
	if err != nil {
		t.Fatal(err)
	}

	for _, id := range []string{a.ID, b.ID} {
		done := awaitStatus(t, s, id, StatusDone)
		if done.Report == nil {
			t.Fatalf("job %s finished without a report", id)
		}
	}
}
