// Package sched is MLCD's multi-tenant job scheduler: the subsystem that
// turns the single-job deployment pipeline (internal/mlcdsys) into a
// service that survives heavy traffic and restarts. It contributes four
// pieces:
//
//   - a bounded FIFO queue with admission control — submissions beyond
//     the queue's capacity are rejected immediately (the API layer maps
//     that to 429) instead of piling up unbounded;
//   - a worker pool running up to Workers HeterBO searches concurrently,
//     each under a cancellable context so a job can be aborted while
//     queued or mid-search;
//   - a shared ProfileCache keyed by (job, instance type, nodes) with
//     singleflight deduplication: the paper's insight is that profiling
//     cost is the scarce resource, so identical probes from different
//     tenants are paid for exactly once and later submissions of the
//     same workload warm-start from prior measurements;
//   - a crash-safe Journal: every submission, completed probe, and
//     terminal status is fsynced to an append-only log, and a restarted
//     scheduler re-enqueues unfinished jobs with their observations
//     already in the cache — recovered searches do not re-profile.
package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mlcd/internal/cloud"
	"mlcd/internal/faultfs"
	"mlcd/internal/fleetprior"
	"mlcd/internal/mlcdsys"
	"mlcd/internal/obs"
	"mlcd/internal/profiler"
	"mlcd/internal/search"
	"mlcd/internal/workload"
)

// Status of a submission in the scheduler.
type Status string

// Submission lifecycle: queued → running → done | failed | cancelled.
// A job cancelled while queued skips running entirely.
const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusDone      Status = "done"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
)

// Terminal reports whether s is a final state.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

// Valid reports whether s is a known status value (for API filtering).
func (s Status) Valid() bool {
	switch s {
	case StatusQueued, StatusRunning, StatusDone, StatusFailed, StatusCancelled:
		return true
	}
	return false
}

// Scheduler errors.
var (
	ErrQueueFull    = errors.New("sched: submission queue full")
	ErrShuttingDown = errors.New("sched: scheduler is shutting down")
	ErrUnknownJob   = errors.New("sched: unknown job")
	ErrNotFound     = errors.New("sched: no such submission")
	ErrFinished     = errors.New("sched: submission already finished")
	// ErrJournal wraps every failed journal append: the triggering
	// operation was refused because its record could not be made durable.
	// The shard plane maps it to 503 and counts it toward shard health.
	ErrJournal = errors.New("sched: journal write failed")
)

// Config assembles a Scheduler.
type Config struct {
	// Workers is the number of concurrent deployment searches (default 1).
	Workers int
	// QueueSize bounds how many submissions may wait (default 64).
	// Submissions beyond it are rejected with ErrQueueFull.
	QueueSize int
	// Jobs is the submission menu (nil → every predefined workload, as
	// DefaultMenu).
	Jobs map[string]workload.Job
	// JournalPath enables the crash-safe journal ("" → none). If the
	// file exists it is replayed first: unfinished submissions are
	// re-enqueued and journaled probes prime the cache.
	JournalPath string
	// JournalDir enables the segmented journal instead: rotating segment
	// files under this directory with snapshot compaction, so recovery
	// cost stays O(live jobs) as history grows. Mutually exclusive with
	// JournalPath.
	JournalDir string
	// CompactEvery sets the segmented journal's background compaction
	// cadence (0 = compact only on demand). Only meaningful with
	// JournalDir.
	CompactEvery time.Duration
	// SegmentMaxRecords seals a journal segment after this many appends
	// (0 → 1024). Only meaningful with JournalDir.
	SegmentMaxRecords int
	// IDPrefix prefixes generated job IDs ("" → "job", yielding
	// "job-0001"). The shard plane gives each shard its own prefix
	// ("s2-job") so IDs stay unique — and routable — across shards.
	IDPrefix string
	// ShardLabel, when non-empty, adds a {shard="..."} label to every
	// scheduler metric so per-shard series stay distinguishable on one
	// shared registry.
	ShardLabel string
	// Cache is the shared profiling cache (nil → a fresh one). Passing
	// one in lets several schedulers — or tests — share measurements.
	Cache *ProfileCache
	// ProfilerMiddleware, when non-nil, wraps the measuring profiler
	// *inside* the cache: it sees only real measurements, never cache
	// hits. Used for instrumentation and tests.
	ProfilerMiddleware func(profiler.Profiler) profiler.Profiler
	// Traces is the per-job timeline recorder (nil → a fresh one with
	// the default retention). The API layer serves its timelines at
	// /v1/jobs/{id}/trace.
	Traces *obs.Recorder
	// FS is the storage under the journal (nil → the real filesystem).
	// Tests inject storage faults and simulated crashes through it.
	FS faultfs.FS
	// FleetPrior enables the fleet meta-prior: the scheduler learns
	// cross-job transfer curves from its profile cache (seeded by journal
	// replay) and arms every search's surrogate with them. Inside the
	// shard plane the merge loop replaces the local prior with the
	// fleet-wide one via SetFleetPrior. Off by default: with it off (or
	// with nothing learned yet) every search is bit-identical to a
	// scheduler without the feature.
	FleetPrior bool
}

// Job is a caller-visible snapshot of one submission.
type Job struct {
	ID           string
	Name         string // menu key the job was submitted under
	Tenant       string
	Workload     workload.Job
	Requirements mlcdsys.Requirements
	Status       Status
	Err          string
	Report       *mlcdsys.Report // non-nil once done
	CacheHits    int             // probes answered from the shared cache
	SavedUSD     float64         // profiling dollars those hits spared
}

// job is the internal, mutable record. All fields are guarded by
// Scheduler.mu except the immutable identity fields.
type job struct {
	id       string
	name     string
	tenant   string
	workload workload.Job
	req      mlcdsys.Requirements

	status        Status
	err           string
	report        *mlcdsys.Report
	cacheHits     int
	savedUSD      float64
	cancel        context.CancelFunc // non-nil while running
	userCancelled bool               // Cancel() was called (vs shutdown abort)
	trace         *obs.JobTrace      // nil-safe per-job timeline sink
}

// Scheduler runs submissions through a worker pool over one MLCD system.
type Scheduler struct {
	sys      *mlcdsys.System
	menu     map[string]workload.Job
	cache    *ProfileCache
	journal  journalSink // nil when journaling is off
	workers  int
	idPrefix string
	mw       func(profiler.Profiler) profiler.Profiler
	traces   *obs.Recorder
	m        schedMetrics

	queue chan *job
	wg    sync.WaitGroup

	// journalErrStreak counts consecutive failed journal appends; any
	// success resets it. Atomic because probe appends happen outside
	// s.mu. The shard plane reads it to detect a dying disk.
	journalErrStreak atomic.Int64

	// fleetOn gates the meta-prior; fleet holds the current prior (nil
	// until something is learned). Atomic so the plane's merge loop can
	// publish a fleet-wide prior while workers arm searches with it.
	fleetOn bool
	fleet   atomic.Pointer[fleetprior.Prior]

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string
	tenants  map[string]bool // every tenant that has ever submitted here
	nextID   int
	active   int  // workers currently running a search
	closed   bool // no more submissions; queue channel closed
	stopping bool // workers must not start queued jobs (hard shutdown)
}

// schedMetrics holds the scheduler's metric handles, resolved once
// against the system's shared registry. When several shards share one
// registry each resolves its own label set via the shard label, so
// per-shard series stay distinguishable (and sum to the fleet totals).
type schedMetrics struct {
	reg   *obs.Registry // for label-parameterized families
	shard string        // "" outside the shard plane

	submissions     *obs.Counter
	queueDepth      *obs.Gauge
	workers         *obs.Gauge
	activeWorkers   *obs.Gauge
	cacheHits       *obs.Counter
	cacheMisses     *obs.Counter
	cacheSavedUSD   *obs.Counter
	journalAppends  *obs.Counter
	journalErrors   *obs.Counter
	journalSeconds  *obs.Histogram
	journalRotates  *obs.Counter
	journalCompacts *obs.Counter
	compactSeconds  *obs.Histogram
	fleetPriorKeys  *obs.Gauge
	fleetArmed      *obs.Counter
}

// shardLabels renders the label set metrics of one shard carry: empty
// outside the shard plane, {shard="N"} inside it.
func shardLabels(shard string, extra ...obs.L) []obs.L {
	if shard == "" {
		return extra
	}
	return append([]obs.L{{Key: "shard", Value: shard}}, extra...)
}

func registerSchedMetrics(reg *obs.Registry, shard string) schedMetrics {
	ls := shardLabels(shard)
	return schedMetrics{
		reg:   reg,
		shard: shard,
		submissions: reg.Counter("mlcd_sched_submissions_total",
			"Submissions admitted to the queue.", ls...),
		queueDepth: reg.Gauge("mlcd_sched_queue_depth",
			"Submissions currently waiting in the queue.", ls...),
		workers: reg.Gauge("mlcd_sched_workers",
			"Size of the search worker pool.", ls...),
		activeWorkers: reg.Gauge("mlcd_sched_active_workers",
			"Workers currently running a deployment search.", ls...),
		cacheHits: reg.Counter("mlcd_sched_cache_hits_total",
			"Probes answered from the shared profiling cache.", ls...),
		cacheMisses: reg.Counter("mlcd_sched_cache_misses_total",
			"Probes that had to be measured for real.", ls...),
		cacheSavedUSD: reg.Counter("mlcd_sched_cache_saved_usd_total",
			"Profiling dollars spared by cache hits.", ls...),
		journalAppends: reg.Counter("mlcd_sched_journal_appends_total",
			"Records appended (and fsynced) to the crash journal.", ls...),
		journalErrors: reg.Counter("mlcd_sched_journal_append_errors_total",
			"Journal appends that failed (write, flush, or fsync error); the triggering operation was refused, never silently acked.", ls...),
		journalSeconds: reg.Histogram("mlcd_sched_journal_append_seconds",
			"Wall-clock latency of one journal append+fsync.", nil, ls...),
		journalRotates: reg.Counter("mlcd_sched_journal_rotations_total",
			"Journal segments sealed by rotation.", ls...),
		journalCompacts: reg.Counter("mlcd_sched_journal_compactions_total",
			"Journal compactions folding sealed segments into the snapshot.", ls...),
		compactSeconds: reg.Histogram("mlcd_sched_journal_compact_seconds",
			"Wall-clock latency of one journal compaction.", nil, ls...),
		fleetPriorKeys: reg.Gauge("mlcd_sched_fleet_prior_keys",
			"(family, instance type) transfer curves in the current fleet meta-prior.", ls...),
		fleetArmed: reg.Counter("mlcd_sched_fleet_prior_armed_total",
			"Searches started with a fleet meta-prior on the surrogate.", ls...),
	}
}

// rejection counts one refused submission by reason.
func (m *schedMetrics) rejection(reason string) {
	m.reg.Counter("mlcd_sched_rejections_total",
		"Submissions refused, by reason.",
		shardLabels(m.shard, obs.L{Key: "reason", Value: reason})...).Inc()
}

// terminal counts one job reaching a final status.
func (m *schedMetrics) terminal(st Status) {
	m.reg.Counter("mlcd_sched_jobs_total",
		"Jobs reaching a terminal status.",
		shardLabels(m.shard, obs.L{Key: "status", Value: string(st)})...).Inc()
}

// DefaultMenu returns the standard submission menu: every predefined
// workload keyed by name (platform-suffixed on collision).
func DefaultMenu() map[string]workload.Job {
	jobs := make(map[string]workload.Job)
	for _, j := range workload.All() {
		key := j.Name
		if _, dup := jobs[key]; dup {
			key = fmt.Sprintf("%s-%s", j.Name, j.Platform)
		}
		jobs[key] = j
	}
	return jobs
}

// New builds a scheduler over sys, replays the journal if configured,
// and starts the worker pool. Jobs recovered from the journal are
// enqueued before any new submission.
func New(sys *mlcdsys.System, cfg Config) (*Scheduler, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 64
	}
	if cfg.Jobs == nil {
		cfg.Jobs = DefaultMenu()
	}
	if cfg.Cache == nil {
		cfg.Cache = NewProfileCache()
	}
	if cfg.Traces == nil {
		cfg.Traces = obs.NewRecorder(0)
	}
	if cfg.IDPrefix == "" {
		cfg.IDPrefix = "job"
	}
	if cfg.JournalPath != "" && cfg.JournalDir != "" {
		return nil, errors.New("sched: JournalPath and JournalDir are mutually exclusive")
	}
	if cfg.FS == nil {
		cfg.FS = faultfs.OS{}
	}
	s := &Scheduler{
		sys:      sys,
		menu:     cfg.Jobs,
		cache:    cfg.Cache,
		workers:  cfg.Workers,
		idPrefix: cfg.IDPrefix,
		mw:       cfg.ProfilerMiddleware,
		traces:   cfg.Traces,
		m:        registerSchedMetrics(sys.Metrics(), cfg.ShardLabel),
		jobs:     make(map[string]*job),
		tenants:  make(map[string]bool),
		fleetOn:  cfg.FleetPrior,
	}
	s.m.workers.Set(float64(cfg.Workers))

	var recovered []*job
	switch {
	case cfg.JournalPath != "":
		state, err := ReplayJournalFS(cfg.FS, cfg.JournalPath)
		if err != nil {
			return nil, err
		}
		recovered = s.absorb(state)
		jl, err := OpenJournalFS(cfg.FS, cfg.JournalPath)
		if err != nil {
			return nil, err
		}
		s.journal = jl
	case cfg.JournalDir != "":
		state, _, err := ReplaySegmentedFS(cfg.FS, cfg.JournalDir)
		if err != nil {
			return nil, err
		}
		recovered = s.absorb(state)
		jl, err := OpenSegmented(SegmentedConfig{
			Dir:          cfg.JournalDir,
			MaxRecords:   cfg.SegmentMaxRecords,
			CompactEvery: cfg.CompactEvery,
			FS:           cfg.FS,
			OnRotate:     s.m.journalRotates.Inc,
			OnCompact: func(segments int, d time.Duration) {
				s.m.journalCompacts.Inc()
				s.m.compactSeconds.Observe(d.Seconds())
			},
		})
		if err != nil {
			return nil, err
		}
		s.journal = jl
	}

	if s.fleetOn {
		// Replayed probes are already in the cache; learn from them now so
		// the first search after a restart starts fleet-warm.
		s.RebuildFleetPrior()
	}

	size := cfg.QueueSize
	if len(recovered) > size {
		size = len(recovered)
	}
	s.queue = make(chan *job, size)
	for _, rec := range recovered {
		s.queue <- rec
	}

	s.wg.Add(s.workers)
	for i := 0; i < s.workers; i++ {
		go s.worker()
	}
	return s, nil
}

// absorb folds a replayed journal into the scheduler state, returning
// the jobs that must be re-enqueued. Probes prime the shared cache so
// those deployments are never re-measured.
func (s *Scheduler) absorb(state JournalState) []*job {
	for _, p := range state.Probes {
		w, ok := s.menu[p.Job]
		if !ok {
			continue // menu changed across restarts; drop the orphan
		}
		obs, err := search.DecodeObservation(p.Observation, s.sys.Catalog())
		if err != nil {
			continue // catalog changed; the measurement no longer resolves
		}
		s.cache.Prime(w, profiler.Result{
			Deployment: obs.Deployment,
			Throughput: obs.Throughput,
			Duration:   time.Duration(p.DurationSec * float64(time.Second)),
			Cost:       p.CostUSD,
		})
	}
	s.nextID = state.MaxID
	var pending []*job
	for _, sub := range state.Subs {
		rec := &job{
			id:     sub.ID,
			name:   sub.Job,
			tenant: sub.Tenant,
			req: mlcdsys.Requirements{
				Budget:   sub.BudgetUSD,
				Deadline: time.Duration(sub.DeadlineHours * float64(time.Hour)),
			},
			status: sub.Status,
			err:    sub.Error,
		}
		s.tenants[sub.Tenant] = true
		w, known := s.menu[sub.Job]
		rec.workload = w
		switch {
		case sub.Status.Terminal():
			// Finished before the restart: keep it visible. The report
			// itself is not journaled, only the outcome status.
		case !known:
			rec.status = StatusFailed
			rec.err = fmt.Sprintf("job %q no longer in the menu after restart", sub.Job)
			s.journalDone(rec)
		default:
			rec.status = StatusQueued
			rec.trace = s.traces.Start(rec.id, rec.name, rec.tenant, scenarioName(rec.req))
			rec.trace.Emit(obs.Event{Kind: "recovered", Note: "re-enqueued from journal; cached probes warm-start the search"})
			pending = append(pending, rec)
		}
		s.jobs[rec.id] = rec
		s.order = append(s.order, rec.id)
	}
	return pending
}

// Menu returns the submission menu. Callers must not mutate it.
func (s *Scheduler) Menu() map[string]workload.Job { return s.menu }

// Cache returns the shared profiling cache.
func (s *Scheduler) Cache() *ProfileCache { return s.cache }

// Traces returns the per-job timeline recorder.
func (s *Scheduler) Traces() *obs.Recorder { return s.traces }

// FleetPrior returns the meta-prior searches are currently armed with
// (nil when the feature is off or nothing has been learned yet).
func (s *Scheduler) FleetPrior() *fleetprior.Prior {
	if !s.fleetOn {
		return nil
	}
	return s.fleet.Load()
}

// SetFleetPrior installs a prior built elsewhere — the shard plane's
// merge loop publishes the fleet-wide prior to every shard through it.
// A no-op when the feature is off; installing nil disarms.
func (s *Scheduler) SetFleetPrior(p *fleetprior.Prior) {
	if !s.fleetOn {
		return
	}
	s.fleet.Store(p)
	s.m.fleetPriorKeys.Set(float64(p.KeyCount()))
}

// RebuildFleetPrior relearns the meta-prior from this scheduler's own
// profile cache (full-fidelity successes only) and installs it. Called
// at startup after journal replay and after each completed job; the
// shard plane's merge loop overwrites the result with the fleet-wide
// prior. A no-op when the feature is off.
func (s *Scheduler) RebuildFleetPrior() {
	if !s.fleetOn {
		return
	}
	jobs := make([]workload.Job, 0, len(s.menu))
	for _, j := range s.menu {
		jobs = append(jobs, j)
	}
	s.SetFleetPrior(fleetprior.BuildFromCache(s.cache.Export(), fleetprior.MenuResolver(jobs)))
}

// scenarioName renders the scenario a requirement set maps to ("" when
// the requirements are invalid).
func scenarioName(req mlcdsys.Requirements) string {
	scen, _, err := mlcdsys.AnalyzeScenario(req)
	if err != nil {
		return ""
	}
	return scen.String()
}

// constraintNote renders the user's requirement for the trace ledger.
func constraintNote(req mlcdsys.Requirements) string {
	switch {
	case req.Deadline > 0:
		return fmt.Sprintf("deadline %s", req.Deadline)
	case req.Budget > 0:
		return fmt.Sprintf("budget $%.2f", req.Budget)
	default:
		return "unconstrained"
	}
}

// Submit validates, admits, journals, and enqueues one submission.
// It returns ErrUnknownJob, ErrShuttingDown, or ErrQueueFull without
// enqueuing anything.
func (s *Scheduler) Submit(name, tenant string, req mlcdsys.Requirements) (Job, error) {
	w, ok := s.menu[name]
	if !ok {
		s.m.rejection("unknown_job")
		return Job{}, fmt.Errorf("%w: %q", ErrUnknownJob, name)
	}
	scen, _, err := mlcdsys.AnalyzeScenario(req)
	if err != nil {
		s.m.rejection("invalid_requirements")
		return Job{}, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		s.m.rejection("shutting_down")
		return Job{}, ErrShuttingDown
	}
	// Admission control: all senders serialize on s.mu and workers only
	// drain, so this capacity check cannot race into a blocking send.
	if len(s.queue) == cap(s.queue) {
		s.m.rejection("queue_full")
		return Job{}, ErrQueueFull
	}
	s.nextID++
	rec := &job{
		id:       fmt.Sprintf("%s-%04d", s.idPrefix, s.nextID),
		name:     name,
		tenant:   tenant,
		workload: w,
		req:      req,
		status:   StatusQueued,
	}
	if s.journal != nil {
		err := s.journalAppend(journalRecord{
			Type:          "submit",
			ID:            rec.id,
			Job:           name,
			Tenant:        tenant,
			BudgetUSD:     req.Budget,
			DeadlineHours: req.Deadline.Hours(),
		})
		if err != nil {
			// Durability is the journal's contract; an unjournaled job
			// would silently vanish on restart, so refuse it. The ID
			// sequence stays consumed: a "failed" append can still have
			// landed durably (fsync error after the write reached the
			// file), and reusing the ID would bind two different
			// submissions to one journal identity.
			return Job{}, err
		}
	}
	s.tenants[tenant] = true
	s.jobs[rec.id] = rec
	s.order = append(s.order, rec.id)
	s.queue <- rec
	s.m.submissions.Inc()
	s.m.queueDepth.Set(float64(len(s.queue)))
	rec.trace = s.traces.Start(rec.id, name, tenant, scen.String())
	rec.trace.Emit(obs.Event{Kind: "submitted", Note: constraintNote(req)})
	return rec.snapshotLocked(), nil
}

// Cancel aborts a submission: a queued job goes straight to cancelled; a
// running one has its context cancelled and reaches cancelled when the
// search notices. Terminal jobs return ErrFinished.
func (s *Scheduler) Cancel(id string) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.jobs[id]
	if !ok {
		return Job{}, ErrNotFound
	}
	switch rec.status {
	case StatusQueued:
		rec.status = StatusCancelled
		rec.userCancelled = true
		s.journalDone(rec)
		s.m.terminal(StatusCancelled)
		rec.trace.Emit(obs.Event{Kind: "cancelled", Note: "cancelled while queued"})
	case StatusRunning:
		rec.userCancelled = true
		if rec.cancel != nil {
			rec.cancel()
		}
	default:
		return rec.snapshotLocked(), ErrFinished
	}
	return rec.snapshotLocked(), nil
}

// Get returns a snapshot of one submission.
func (s *Scheduler) Get(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return rec.snapshotLocked(), true
}

// List returns submissions in submission order, optionally filtered by
// status ("" → all).
func (s *Scheduler) List(filter Status) []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Job, 0, len(s.order))
	for _, id := range s.order {
		rec := s.jobs[id]
		if filter != "" && rec.status != filter {
			continue
		}
		out = append(out, rec.snapshotLocked())
	}
	return out
}

// Stats describes the scheduler's current load and the cache's savings.
type Stats struct {
	Workers       int            `json:"workers"`
	ActiveWorkers int            `json:"active_workers"`
	QueueDepth    int            `json:"queue_depth"`
	JobsByStatus  map[Status]int `json:"jobs_by_status"`
	Cache         CacheStats     `json:"profile_cache"`
}

// Stats snapshots the scheduler.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Workers:       s.workers,
		ActiveWorkers: s.active,
		QueueDepth:    len(s.queue),
		JobsByStatus:  make(map[Status]int),
	}
	for _, rec := range s.jobs {
		st.JobsByStatus[rec.status]++
	}
	s.mu.Unlock()
	st.Cache = s.cache.Stats()
	return st
}

// Load reports the queue's occupancy and capacity plus the worker-pool
// size — what the API layer needs to derive a Retry-After hint for a
// rejected submission.
func (s *Scheduler) Load() (queued, capacity, workers int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue), cap(s.queue), s.workers
}

// CompactJournal folds the segmented journal's sealed segments into its
// snapshot immediately. A no-op when the scheduler journals to a single
// file or not at all.
func (s *Scheduler) CompactJournal() error {
	if sj, ok := s.journal.(*SegmentedJournal); ok {
		return sj.Compact()
	}
	return nil
}

// Close stops accepting submissions and blocks until every queued and
// running job has finished — the graceful drain.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
	s.wg.Wait()
	if s.journal != nil {
		_ = s.journal.Close()
	}
}

// Shutdown stops accepting submissions and stops starting queued jobs;
// running searches get until ctx is done to finish, then their contexts
// are cancelled and Shutdown returns without waiting further — a search
// wedged on a hung probe must not hold the process hostage past its
// grace period. Jobs still queued (and runs aborted by the deadline)
// keep no terminal journal record, so a scheduler restarted from the
// same journal resumes them. Returns ctx.Err() if the deadline forced
// cancellation.
func (s *Scheduler) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.stopping = true
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.mu.Lock()
		for _, rec := range s.jobs {
			if rec.status == StatusRunning && rec.cancel != nil {
				rec.cancel()
			}
		}
		s.mu.Unlock()
	}
	if s.journal != nil {
		_ = s.journal.Close()
	}
	return err
}

// worker drains the queue until it closes.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for rec := range s.queue {
		s.runJob(rec)
	}
}

// runJob executes one submission end to end.
func (s *Scheduler) runJob(rec *job) {
	s.mu.Lock()
	if s.stopping || rec.status != StatusQueued {
		// Hard shutdown, or cancelled while queued: leave the record as
		// is. Under shutdown the job keeps its journal claim and is
		// recovered on restart.
		s.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	rec.status = StatusRunning
	rec.cancel = cancel
	s.active++
	s.m.activeWorkers.Set(float64(s.active))
	s.m.queueDepth.Set(float64(len(s.queue)))
	warm := s.cache.Observations(rec.workload)
	s.mu.Unlock()
	defer cancel()

	prior := s.FleetPrior()
	if prior.KeyCount() > 0 {
		s.m.fleetArmed.Inc()
	}
	rec.trace.Emit(obs.Event{Kind: "started",
		Note: fmt.Sprintf("search started with %d warm-start observation(s)", len(warm))})

	rep, err := s.sys.DeployCtx(ctx, rec.workload, rec.req, mlcdsys.DeployOptions{
		WarmStart:  warm,
		FleetPrior: prior,
		WrapProfiler: func(inner profiler.Profiler) profiler.Profiler {
			if s.mw != nil {
				inner = s.mw(inner)
			}
			return &cachingProfiler{sched: s, inner: inner, rec: rec}
		},
		Tracer: rec.trace,
	})

	s.mu.Lock()
	defer s.mu.Unlock()
	s.active--
	s.m.activeWorkers.Set(float64(s.active))
	rec.cancel = nil
	switch {
	case err == nil:
		rec.status = StatusDone
		rec.report = &rep
		s.journalDone(rec)
		s.m.terminal(StatusDone)
		// The finished search's journaled probes are in the cache now;
		// fold them into the prior so the next tenant starts warmer.
		// Inside the shard plane the next merge replaces this with the
		// fleet-wide prior.
		s.RebuildFleetPrior()
		rec.trace.Emit(obs.Event{
			Kind:            "done",
			Deployment:      rep.Outcome.Best.String(),
			Throughput:      rep.Outcome.BestThroughput,
			CumProfileHours: rep.Outcome.ProfileTime.Hours(),
			CumProfileUSD:   rep.Outcome.ProfileCost,
			TrainHours:      rep.TrainTime.Hours(),
			TrainUSD:        rep.TrainCost,
			Note:            fmt.Sprintf("satisfied=%t, total $%.2f in %s", rep.Satisfied, rep.TotalCost, rep.TotalTime),
		})
	case errors.Is(err, context.Canceled):
		if rec.userCancelled {
			rec.status = StatusCancelled
			s.journalDone(rec)
			s.m.terminal(StatusCancelled)
			rec.trace.Emit(obs.Event{Kind: "cancelled", Note: "cancelled while running"})
		} else {
			// Shutdown abort: no terminal record, so a restart resumes
			// the job — warm-started from its already-journaled probes.
			rec.status = StatusQueued
		}
	default:
		rec.status = StatusFailed
		rec.err = err.Error()
		s.journalDone(rec)
		s.m.terminal(StatusFailed)
		rec.trace.Emit(obs.Event{Kind: "failed", Note: rec.err})
	}
}

// journalDone records a terminal status. Callers hold s.mu.
func (s *Scheduler) journalDone(rec *job) {
	if s.journal == nil {
		return
	}
	_ = s.journalAppend(journalRecord{
		Type:   "done",
		ID:     rec.id,
		Status: rec.status,
		Error:  rec.err,
	})
}

// journalAppend appends one record, timing the fsync for the metrics.
// A failure increments mlcd_sched_journal_append_errors_total and the
// consecutive-error streak (any success resets it), and comes back
// wrapped in ErrJournal so callers — and the shard plane's health
// checker — can tell storage failures from everything else.
func (s *Scheduler) journalAppend(rec journalRecord) error {
	start := time.Now()
	err := s.journal.append(rec)
	s.m.journalSeconds.Observe(time.Since(start).Seconds())
	if err != nil {
		s.m.journalErrors.Inc()
		s.journalErrStreak.Add(1)
		return fmt.Errorf("%w: %w", ErrJournal, err)
	}
	s.journalErrStreak.Store(0)
	s.m.journalAppends.Inc()
	return nil
}

// JournalErrStreak reports how many journal appends in a row have
// failed (0 = the last append succeeded, or none happened yet).
func (s *Scheduler) JournalErrStreak() int {
	return int(s.journalErrStreak.Load())
}

// ProbeJournal appends a no-op health record and reports whether it
// became durable — the shard plane's liveness probe for this shard's
// disk. Health records are ignored on replay and shed by compaction.
// Returns nil when the scheduler does not journal (nothing to fail).
func (s *Scheduler) ProbeJournal() error {
	if s.journal == nil {
		return nil
	}
	return s.journalAppend(journalRecord{Type: "health"})
}

// HasTenant reports whether tenant has ever submitted to (or been
// recovered by) this scheduler — the shard plane's "does this tenant
// already have state here" test when routing around a degraded shard.
func (s *Scheduler) HasTenant(tenant string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tenants[tenant]
}

// snapshotLocked copies the record for callers. Callers hold s.mu.
func (rec *job) snapshotLocked() Job {
	return Job{
		ID:           rec.id,
		Name:         rec.name,
		Tenant:       rec.tenant,
		Workload:     rec.workload,
		Requirements: rec.req,
		Status:       rec.status,
		Err:          rec.err,
		Report:       rec.report,
		CacheHits:    rec.cacheHits,
		SavedUSD:     rec.savedUSD,
	}
}

// cachingProfiler routes every probe of one running job through the
// shared cache: hits come back free (the search is charged nothing and
// the savings are booked to the tenant), misses are measured exactly
// once — even across concurrent jobs, via the cache's singleflight — and
// journaled so a restart never re-pays for them.
type cachingProfiler struct {
	sched *Scheduler
	inner profiler.Profiler
	rec   *job
}

// Profile implements profiler.Profiler.
func (p *cachingProfiler) Profile(j workload.Job, d cloud.Deployment) profiler.Result {
	res, hit := p.sched.cache.Do(j, d, p.rec.tenant, func() profiler.Result {
		return p.inner.Profile(j, d)
	})
	if hit {
		p.sched.mu.Lock()
		p.rec.cacheHits++
		p.rec.savedUSD += res.Cost
		p.sched.mu.Unlock()
		p.sched.m.cacheHits.Inc()
		p.sched.m.cacheSavedUSD.Add(res.Cost)
		p.rec.trace.Emit(obs.Event{
			Kind:       "cache_hit",
			Deployment: res.Deployment.String(),
			Throughput: res.Throughput,
			SavedUSD:   res.Cost,
			Note:       "probe answered from the shared cache at zero cost",
		})
		// The measurement is reused: the job pays neither time nor money.
		res.Duration = 0
		res.Cost = 0
		return res
	}
	p.sched.m.cacheMisses.Inc()
	if !res.Failed && p.sched.journal != nil {
		if enc, ok := search.EncodeObservation(search.Observation{Deployment: res.Deployment, Throughput: res.Throughput}); ok {
			_ = p.sched.journalAppend(journalRecord{
				Type:        "probe",
				Job:         p.rec.name,
				Observation: &enc,
				DurationSec: res.Duration.Seconds(),
				CostUSD:     res.Cost,
			})
		}
	}
	return res
}

// ProfileAt implements profiler.FidelityProfiler: sub-sampled probes
// BYPASS the shared cache and the journal entirely. A biased short
// burst must never be served to another tenant (or to a restarted
// search, which would absorb it as a warm-start truth) as if it were a
// full measurement — only full-fidelity probes are cacheable facts.
func (p *cachingProfiler) ProfileAt(j workload.Job, d cloud.Deployment, f float64) profiler.Result {
	if profiler.Fid(f) >= 1 {
		return p.Profile(j, d)
	}
	return profiler.ProbeAt(p.inner, j, d, f)
}
