package sched

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mlcd/internal/cloud"
	"mlcd/internal/mlcdsys"
	"mlcd/internal/profiler"
	"mlcd/internal/workload"
)

func newTestSystem(t *testing.T) *mlcdsys.System {
	t.Helper()
	cat, err := cloud.DefaultCatalog().Subset("c5.4xlarge")
	if err != nil {
		t.Fatal(err)
	}
	return mlcdsys.New(mlcdsys.Config{
		Catalog: cat,
		Limits:  cloud.SpaceLimits{MaxCPUNodes: 40, MaxGPUNodes: 1},
		Seed:    1,
	})
}

// profilerFunc adapts a function to profiler.Profiler.
type profilerFunc func(workload.Job, cloud.Deployment) profiler.Result

func (f profilerFunc) Profile(j workload.Job, d cloud.Deployment) profiler.Result { return f(j, d) }

func awaitStatus(t *testing.T, s *Scheduler, id string, want Status) Job {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if j, ok := s.Get(id); ok && j.Status == want {
			return j
		}
		time.Sleep(2 * time.Millisecond)
	}
	j, _ := s.Get(id)
	t.Fatalf("job %s never reached %s (now %s, err %q)", id, want, j.Status, j.Err)
	return Job{}
}

func TestSubmitValidation(t *testing.T) {
	s, err := New(newTestSystem(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if _, err := s.Submit("no-such-job", "t", mlcdsys.Requirements{Budget: 10}); err == nil {
		t.Fatal("unknown job accepted")
	}
	conflicting := mlcdsys.Requirements{Budget: 10, Deadline: time.Hour}
	if _, err := s.Submit("resnet-cifar10", "t", conflicting); err == nil {
		t.Fatal("conflicting requirements accepted")
	}
	job, err := s.Submit("resnet-cifar10", "acme", mlcdsys.Requirements{Budget: 100})
	if err != nil {
		t.Fatal(err)
	}
	if job.ID == "" || job.Status != StatusQueued || job.Tenant != "acme" {
		t.Fatalf("submission = %+v", job)
	}
	done := awaitStatus(t, s, job.ID, StatusDone)
	if done.Report == nil || !done.Report.Satisfied {
		t.Fatalf("report = %+v", done.Report)
	}
}

func TestSubmitAfterCloseRejected(t *testing.T) {
	s, err := New(newTestSystem(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := s.Submit("resnet-cifar10", "t", mlcdsys.Requirements{Budget: 100}); err != ErrShuttingDown {
		t.Fatalf("submit after close = %v", err)
	}
}

// TestJournalRecovery is the crash story end to end: a scheduler is
// killed mid-search with one job running and one queued, then a fresh
// scheduler replays the journal — both jobs finish, and no deployment
// journaled before the crash is ever measured again.
func TestJournalRecovery(t *testing.T) {
	journalPath := filepath.Join(t.TempDir(), "sched.journal")

	// Phase A: let exactly 3 probes measure, then block the 4th forever —
	// the scheduler is abandoned mid-probe, like a process kill.
	requests := make(chan struct{}, 128)
	tokens := make(chan struct{}, 128)
	for i := 0; i < 3; i++ {
		tokens <- struct{}{}
	}
	a, err := New(newTestSystem(t), Config{
		Workers:     1,
		JournalPath: journalPath,
		ProfilerMiddleware: func(inner profiler.Profiler) profiler.Profiler {
			return profilerFunc(func(j workload.Job, d cloud.Deployment) profiler.Result {
				requests <- struct{}{}
				<-tokens
				return inner.Profile(j, d)
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	j1, err := a.Submit("resnet-cifar10", "acme", mlcdsys.Requirements{Budget: 100})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := a.Submit("resnet-cifar10", "globex", mlcdsys.Requirements{Budget: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		select {
		case <-requests:
		case <-time.After(30 * time.Second):
			t.Fatalf("probe %d never requested", i+1)
		}
	}
	// Scheduler a is now wedged on its 4th probe and never released: its
	// worker goroutine leaks for the test's lifetime, exactly like a
	// crashed process whose journal survives.

	preCrash, err := ReplayJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(preCrash.Subs) != 2 || preCrash.Subs[0].Status != "" || preCrash.Subs[1].Status != "" {
		t.Fatalf("pre-crash journal subs = %+v", preCrash.Subs)
	}
	if len(preCrash.Probes) != 3 {
		t.Fatalf("pre-crash journal probes = %+v", preCrash.Probes)
	}
	crashKeys := make(map[string]bool)
	for _, p := range preCrash.Probes {
		crashKeys[p.Observation.Type+"|"+string(rune('0'+p.Observation.Nodes))] = true
	}

	// Phase B: a fresh scheduler over the same journal. Both jobs must
	// resume and finish, and none of the journaled deployments may be
	// re-measured — they arrive via the primed cache as warm starts.
	var mu sync.Mutex
	measuredB := make(map[string]int)
	b, err := New(newTestSystem(t), Config{
		Workers:     2,
		JournalPath: journalPath,
		ProfilerMiddleware: func(inner profiler.Profiler) profiler.Profiler {
			return profilerFunc(func(j workload.Job, d cloud.Deployment) profiler.Result {
				mu.Lock()
				measuredB[d.Type.Name+"|"+string(rune('0'+d.Nodes))]++
				mu.Unlock()
				return inner.Profile(j, d)
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	for _, id := range []string{j1.ID, j2.ID} {
		got, ok := b.Get(id)
		if !ok {
			t.Fatalf("job %s lost across restart", id)
		}
		if got.Status != StatusQueued && got.Status != StatusRunning && got.Status != StatusDone {
			t.Fatalf("recovered job %s in state %s", id, got.Status)
		}
	}
	d1 := awaitStatus(t, b, j1.ID, StatusDone)
	d2 := awaitStatus(t, b, j2.ID, StatusDone)
	if d1.Report == nil || d2.Report == nil || !d1.Report.Satisfied || !d2.Report.Satisfied {
		t.Fatalf("recovered reports: %+v / %+v", d1.Report, d2.Report)
	}
	if d1.Tenant != "acme" || d2.Tenant != "globex" {
		t.Fatalf("tenants lost: %q / %q", d1.Tenant, d2.Tenant)
	}

	mu.Lock()
	for key := range measuredB {
		if crashKeys[key] {
			t.Errorf("deployment %s re-profiled after recovery", key)
		}
	}
	mu.Unlock()

	// ID allocation continues past the journal's high-water mark.
	j3, err := b.Submit("resnet-cifar10", "initech", mlcdsys.Requirements{Budget: 100})
	if err != nil {
		t.Fatal(err)
	}
	if j3.ID != "job-0003" {
		t.Fatalf("post-recovery ID = %s, want job-0003", j3.ID)
	}
	awaitStatus(t, b, j3.ID, StatusDone)

	// The whole journal must never record the same deployment probe twice
	// — that is the "profiling dollars are paid once" invariant on disk.
	final, err := ReplayJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, p := range final.Probes {
		key := p.Job + "|" + p.Observation.Type + "|" + string(rune('0'+p.Observation.Nodes))
		if seen[key] {
			t.Errorf("probe %s journaled twice", key)
		}
		seen[key] = true
	}
}

// TestCrashRecoveryTruncatedTrailingLine is the crash-mid-append story
// end to end: the process dies while fsyncing a probe record, leaving a
// truncated trailing JSONL line. A fresh scheduler must warm-start
// cleanly — every complete record recovered and never re-measured, the
// torn record dropped and honestly re-measured — and the journal it
// appends afterwards must replay cleanly for the *next* restart.
func TestCrashRecoveryTruncatedTrailingLine(t *testing.T) {
	journalPath := filepath.Join(t.TempDir(), "sched.journal")

	// Phase A: journal 3 probes for two jobs, then abandon the scheduler
	// wedged on its 4th — a process kill with the journal left behind.
	requests := make(chan struct{}, 128)
	tokens := make(chan struct{}, 128)
	for i := 0; i < 3; i++ {
		tokens <- struct{}{}
	}
	a, err := New(newTestSystem(t), Config{
		Workers:     1,
		JournalPath: journalPath,
		ProfilerMiddleware: func(inner profiler.Profiler) profiler.Profiler {
			return profilerFunc(func(j workload.Job, d cloud.Deployment) profiler.Result {
				requests <- struct{}{}
				<-tokens
				return inner.Profile(j, d)
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	j1, err := a.Submit("resnet-cifar10", "acme", mlcdsys.Requirements{Budget: 100})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := a.Submit("resnet-cifar10", "globex", mlcdsys.Requirements{Budget: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		select {
		case <-requests:
		case <-time.After(30 * time.Second):
			t.Fatalf("probe %d never requested", i+1)
		}
	}

	// The crash tears the final record: chop bytes off the journal so the
	// last journaled probe's line is incomplete.
	intact, err := ReplayJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(intact.Probes) != 3 {
		t.Fatalf("pre-crash journal probes = %+v", intact.Probes)
	}
	info, err := os.Stat(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(journalPath, info.Size()-20); err != nil {
		t.Fatal(err)
	}
	torn, err := ReplayJournal(journalPath)
	if err != nil {
		t.Fatalf("truncated trailing line must replay cleanly: %v", err)
	}
	if len(torn.Subs) != 2 || len(torn.Probes) != 2 {
		t.Fatalf("post-crash journal = %d subs, %d probes; want 2 and 2", len(torn.Subs), len(torn.Probes))
	}
	probeKey := func(typ string, nodes int) string { return typ + "|" + string(rune('0'+nodes)) }
	recovered := make(map[string]bool)
	for _, p := range torn.Probes {
		recovered[probeKey(p.Observation.Type, p.Observation.Nodes)] = true
	}
	tornKey := probeKey(intact.Probes[2].Observation.Type, intact.Probes[2].Observation.Nodes)

	// Phase B: warm start over the torn journal. Both jobs finish; the
	// two intact probes arrive via the primed cache, and the torn third
	// is measured again — dropped, not silently half-trusted.
	var mu sync.Mutex
	measured := make(map[string]int)
	b, err := New(newTestSystem(t), Config{
		Workers:     2,
		JournalPath: journalPath,
		ProfilerMiddleware: func(inner profiler.Profiler) profiler.Profiler {
			return profilerFunc(func(j workload.Job, d cloud.Deployment) profiler.Result {
				mu.Lock()
				measured[probeKey(d.Type.Name, d.Nodes)]++
				mu.Unlock()
				return inner.Profile(j, d)
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	awaitStatus(t, b, j1.ID, StatusDone)
	awaitStatus(t, b, j2.ID, StatusDone)
	b.Close()

	mu.Lock()
	for key := range recovered {
		if measured[key] > 0 {
			t.Errorf("recovered deployment %s re-profiled after warm start", key)
		}
	}
	if measured[tornKey] == 0 {
		t.Errorf("torn probe %s never re-measured — a half-written record was trusted", tornKey)
	}
	mu.Unlock()

	// The journal B appended must be whole again: a second restart replays
	// without error and proves both jobs terminal.
	final, err := ReplayJournal(journalPath)
	if err != nil {
		t.Fatalf("journal unreadable after append-over-torn-tail: %v", err)
	}
	for _, sub := range final.Subs {
		if sub.ID == j1.ID || sub.ID == j2.ID {
			if sub.Status != StatusDone {
				t.Errorf("job %s not terminal in repaired journal: %q", sub.ID, sub.Status)
			}
		}
	}
}

func TestShutdownCancelsRunningWithoutTerminalRecord(t *testing.T) {
	journalPath := filepath.Join(t.TempDir(), "sched.journal")
	release := make(chan struct{})
	var once sync.Once
	defer once.Do(func() { close(release) })

	started := make(chan struct{}, 16)
	s, err := New(newTestSystem(t), Config{
		Workers:     1,
		JournalPath: journalPath,
		ProfilerMiddleware: func(inner profiler.Profiler) profiler.Profiler {
			return profilerFunc(func(j workload.Job, d cloud.Deployment) profiler.Result {
				started <- struct{}{}
				<-release
				return inner.Profile(j, d)
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	job, err := s.Submit("resnet-cifar10", "t", mlcdsys.Requirements{Budget: 100})
	if err != nil {
		t.Fatal(err)
	}
	<-started // the search is mid-probe, wedged until we release it

	// Expired grace period: Shutdown must cancel the running search and
	// return its context error without waiting for the wedged probe.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Shutdown(ctx); err != context.Canceled {
		t.Fatalf("shutdown = %v", err)
	}

	// No terminal record: the job is still owed on restart. The probe is
	// still blocked, so nothing could have raced the journal read.
	st, err := ReplayJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Subs) != 1 || st.Subs[0].ID != job.ID || st.Subs[0].Status != "" {
		t.Fatalf("journal after shutdown = %+v", st.Subs)
	}
}

func TestUserCancelIsTerminalInJournal(t *testing.T) {
	journalPath := filepath.Join(t.TempDir(), "sched.journal")
	gate := make(chan struct{})
	var once sync.Once
	defer once.Do(func() { close(gate) })

	s, err := New(newTestSystem(t), Config{
		Workers:     1,
		JournalPath: journalPath,
		ProfilerMiddleware: func(inner profiler.Profiler) profiler.Profiler {
			return profilerFunc(func(j workload.Job, d cloud.Deployment) profiler.Result {
				<-gate
				return inner.Profile(j, d)
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	running, err := s.Submit("resnet-cifar10", "t", mlcdsys.Requirements{Budget: 100})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit("resnet-cifar10", "t", mlcdsys.Requirements{Budget: 100})
	if err != nil {
		t.Fatal(err)
	}

	if got, err := s.Cancel(queued.ID); err != nil || got.Status != StatusCancelled {
		t.Fatalf("cancel queued = %+v, %v", got, err)
	}
	if _, err := s.Cancel(queued.ID); err != ErrFinished {
		t.Fatalf("double cancel = %v", err)
	}
	if _, err := s.Cancel("job-9999"); err != ErrNotFound {
		t.Fatalf("cancel unknown = %v", err)
	}
	if _, err := s.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	once.Do(func() { close(gate) })
	awaitStatus(t, s, running.ID, StatusCancelled)
	s.Close()

	// Both cancellations are terminal on disk: a restart resumes nothing.
	st, err := ReplayJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range st.Subs {
		if sub.Status != StatusCancelled {
			t.Errorf("journaled sub %s status %q, want cancelled", sub.ID, sub.Status)
		}
	}
	restarted, err := New(newTestSystem(t), Config{Workers: 1, JournalPath: journalPath})
	if err != nil {
		t.Fatal(err)
	}
	defer restarted.Close()
	if got, _ := restarted.Get(running.ID); got.Status != StatusCancelled {
		t.Fatalf("restarted status = %s", got.Status)
	}
	if st := restarted.Stats(); st.JobsByStatus[StatusCancelled] != 2 || st.QueueDepth != 0 {
		t.Fatalf("restarted stats = %+v", st)
	}
}

func TestStatsShape(t *testing.T) {
	s, err := New(newTestSystem(t), Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	job, err := s.Submit("resnet-cifar10", "acme", mlcdsys.Requirements{Budget: 100})
	if err != nil {
		t.Fatal(err)
	}
	awaitStatus(t, s, job.ID, StatusDone)
	st := s.Stats()
	if st.Workers != 3 || st.JobsByStatus[StatusDone] != 1 || st.Cache.Misses == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if !strings.HasPrefix(job.ID, "job-") {
		t.Fatalf("job id = %q", job.ID)
	}
}
