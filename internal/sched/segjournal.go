package sched

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"mlcd/internal/faultfs"
)

// The segmented journal replaces the single ever-growing JSONL file with
// a directory of rotating segment files plus a compacted snapshot, so
// that recovery cost is O(live jobs + distinct probes), not O(history):
//
//	dir/
//	  snapshot.json    compacted state covering segments ≤ Through
//	  seg-00000007.jnl sealed segment (immutable once rotated away from)
//	  seg-00000008.jnl active segment (append + fsync per record)
//
// Appends go to the active segment exactly as in the single-file
// journal. When the active segment reaches MaxRecords it is sealed and
// a new one opened. Compaction folds the current snapshot plus every
// sealed segment into a fresh snapshot — keeping only live (non-
// terminal) submissions, one probe per (job, type, nodes), and the
// maximum job-ID sequence — then deletes the sealed segments it
// absorbed. The snapshot is written to a temp file, fsynced, and
// renamed into place, so a crash at any point leaves either the old or
// the new snapshot, never a torn one; segments are deleted only after
// the rename, and replay skips any leftover segment the snapshot
// already covers (Through), so the crash window between rename and
// delete is idempotent.
//
// Recovery replays snapshot.json, then every segment with a sequence
// number greater than the snapshot's Through, in order. The last
// segment may end in a torn line (crash mid-append); any segment may
// have been torn-tail-repaired by a previous open (the PR 4 repair
// path), and compaction reads such segments cleanly.

// snapshotFile is the on-disk compacted state.
type snapshotFile struct {
	Version int              `json:"version"`
	Through int              `json:"through"` // highest segment seq folded in
	MaxID   int              `json:"max_id"`
	Subs    []RecoveredSub   `json:"subs,omitempty"` // live (non-terminal) only
	Probes  []RecoveredProbe `json:"probes,omitempty"`
}

const (
	snapshotName      = "snapshot.json"
	segmentPattern    = "seg-%08d.jnl"
	defaultMaxRecords = 1024
)

// SegmentedConfig assembles a SegmentedJournal.
type SegmentedConfig struct {
	// Dir is the journal directory (created if missing).
	Dir string
	// MaxRecords seals the active segment after this many appends
	// (default 1024).
	MaxRecords int
	// CompactEvery starts a background loop compacting sealed segments
	// on this cadence (0 = compact only on rotation thresholds or when
	// Compact is called explicitly).
	CompactEvery time.Duration
	// OnCompact, when non-nil, is invoked after each successful
	// compaction with the number of segments absorbed and the elapsed
	// wall time. Used to wire metrics without importing obs here.
	OnCompact func(segments int, d time.Duration)
	// OnRotate, when non-nil, is invoked after each segment rotation.
	OnRotate func()
	// FS is the storage under the journal (nil → the real filesystem).
	// The crash-restart simulator injects faults through it.
	FS faultfs.FS
}

// SegmentedJournal is an open segmented scheduler journal.
type SegmentedJournal struct {
	cfg SegmentedConfig
	fs  faultfs.FS // cfg.FS resolved (never nil)

	mu     sync.Mutex
	seq    int // active segment sequence number
	f      faultfs.File
	w      *bufio.Writer
	n      int   // records appended to the active segment
	off    int64 // bytes of complete, newline-terminated records in the active segment
	closed bool
	wedged bool // a failed rollback left torn bytes mid-file: fail stop

	stop chan struct{} // closes the background compaction loop
	done chan struct{} // loop exited
}

// segPath renders the path of segment seq.
func segPath(dir string, seq int) string {
	return filepath.Join(dir, fmt.Sprintf(segmentPattern, seq))
}

// listSegments returns the segment sequence numbers present in dir, in
// ascending order.
func listSegments(fsys faultfs.FS, dir string) ([]int, error) {
	names, err := fsys.ReadDir(dir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var seqs []int
	for _, name := range names {
		var n int
		if _, err := fmt.Sscanf(name, segmentPattern, &n); err == nil {
			seqs = append(seqs, n)
		}
	}
	sort.Ints(seqs)
	return seqs, nil
}

// readSnapshot loads dir's snapshot; a missing file is an empty one.
func readSnapshot(fsys faultfs.FS, dir string) (snapshotFile, error) {
	var snap snapshotFile
	b, err := fsys.ReadFile(filepath.Join(dir, snapshotName))
	if errors.Is(err, fs.ErrNotExist) {
		return snap, nil
	}
	if err != nil {
		return snap, err
	}
	if err := json.Unmarshal(b, &snap); err != nil {
		return snap, fmt.Errorf("sched: parsing journal snapshot: %w", err)
	}
	return snap, nil
}

// ReplayStats reports what one segmented recovery actually read — the
// quantity the snapshot+tail design keeps flat as dead history grows.
type ReplayStats struct {
	SnapshotSubs   int // live submissions restored from the snapshot
	SnapshotProbes int // probes restored from the snapshot
	TailRecords    int // records replayed from post-snapshot segments
	TailSegments   int // segments replayed
}

// ReplaySegmented reads the segmented journal in dir on the real
// filesystem: the snapshot first, then every segment the snapshot does
// not cover, in order. A missing directory is an empty journal.
func ReplaySegmented(dir string) (JournalState, ReplayStats, error) {
	return ReplaySegmentedFS(faultfs.OS{}, dir)
}

// ReplaySegmentedFS is ReplaySegmented over an injectable filesystem.
func ReplaySegmentedFS(fsys faultfs.FS, dir string) (JournalState, ReplayStats, error) {
	var st JournalState
	var rs ReplayStats
	snap, err := readSnapshot(fsys, dir)
	if err != nil {
		return st, rs, err
	}
	index := make(map[string]int)
	for _, sub := range snap.Subs {
		index[sub.ID] = len(st.Subs)
		st.Subs = append(st.Subs, sub)
	}
	st.Probes = append(st.Probes, snap.Probes...)
	st.MaxID = snap.MaxID
	rs.SnapshotSubs = len(snap.Subs)
	rs.SnapshotProbes = len(snap.Probes)

	seqs, err := listSegments(fsys, dir)
	if err != nil {
		return st, rs, err
	}
	for _, seq := range seqs {
		if seq <= snap.Through {
			continue // compacted but not yet deleted (crash window)
		}
		f, err := fsys.Open(segPath(dir, seq))
		if err != nil {
			return st, rs, err
		}
		n, err := scanRecords(f, func(rec journalRecord) {
			applyRecord(&st, index, rec)
		})
		_ = f.Close()
		if err != nil {
			return st, rs, fmt.Errorf("sched: segment %d: %w", seq, err)
		}
		rs.TailRecords += n
		rs.TailSegments++
	}
	return st, rs, nil
}

// OpenSegmented opens (creating if needed) the segmented journal in
// cfg.Dir for appending, repairing the active segment's torn tail
// first, and starts the background compaction loop when CompactEvery is
// set. Callers replay with ReplaySegmented before opening, exactly as
// with the single-file journal.
func OpenSegmented(cfg SegmentedConfig) (*SegmentedJournal, error) {
	if cfg.MaxRecords <= 0 {
		cfg.MaxRecords = defaultMaxRecords
	}
	fsys := cfg.FS
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	if err := fsys.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("sched: creating journal dir: %w", err)
	}
	// A crash between writing snapshot.json.tmp and renaming it leaves
	// the tmp file behind; it covers nothing (only the rename publishes
	// it) and a fresh compaction will rewrite it, so discard it rather
	// than let it accumulate — or worse, be confused for state.
	if err := fsys.Remove(filepath.Join(cfg.Dir, snapshotName+".tmp")); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("sched: clearing stale snapshot tmp: %w", err)
	}
	seqs, err := listSegments(fsys, cfg.Dir)
	if err != nil {
		return nil, err
	}
	seq := 1
	if len(seqs) > 0 {
		seq = seqs[len(seqs)-1]
	}
	path := segPath(cfg.Dir, seq)
	// Only the last segment can be torn (it was the active one when the
	// crash hit); sealed segments were rotated away from after a flush.
	if err := repairTornTail(fsys, path); err != nil {
		return nil, fmt.Errorf("sched: repairing segment tail: %w", err)
	}
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sched: opening segment: %w", err)
	}
	n, err := countRecords(fsys, path)
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	info, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("sched: sizing segment: %w", err)
	}
	j := &SegmentedJournal{
		cfg: cfg,
		fs:  fsys,
		seq: seq,
		f:   f,
		w:   bufio.NewWriter(f),
		n:   n,
		off: info.Size(), // record-aligned: the tail was just repaired
	}
	if cfg.CompactEvery > 0 {
		j.stop = make(chan struct{})
		j.done = make(chan struct{})
		go j.compactLoop()
	}
	return j, nil
}

// countRecords counts newline-terminated records in a segment so a
// reopened active segment rotates at the same threshold as a fresh one.
func countRecords(fsys faultfs.FS, path string) (int, error) {
	f, err := fsys.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	defer func() { _ = f.Close() }()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	n := 0
	for sc.Scan() {
		if len(sc.Bytes()) > 0 {
			n++
		}
	}
	return n, sc.Err()
}

// append writes one record to the active segment, fsyncs it, and
// rotates when the segment is full. Implements journalSink.
//
// A failed write is rolled back: the active segment is truncated to the
// last record boundary and the buffered writer replaced, so a short or
// refused write never leaves torn bytes mid-file for the next append to
// concatenate onto (which would read as corruption on replay). A failed
// fsync needs no rollback — the record is complete and newline-aligned,
// merely not durable — but the operation is still refused. If the
// rollback truncate itself fails the journal wedges fail-stop: further
// appends are refused until a reopen repairs the file.
func (j *SegmentedJournal) append(rec journalRecord) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("sched: journal is closed")
	}
	if j.wedged {
		return errors.New("sched: journal wedged by failed write rollback; reopen to repair")
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("sched: encoding journal record: %w", err)
	}
	b = append(b, '\n')
	if _, err := j.w.Write(b); err != nil {
		j.rollbackLocked()
		return fmt.Errorf("sched: appending journal record: %w", err)
	}
	if err := j.w.Flush(); err != nil {
		j.rollbackLocked()
		return fmt.Errorf("sched: flushing journal: %w", err)
	}
	j.off += int64(len(b))
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("sched: syncing journal: %w", err)
	}
	j.n++
	if j.n >= j.cfg.MaxRecords {
		if err := j.rotateLocked(); err != nil {
			return err
		}
	}
	return nil
}

// rollbackLocked restores the active segment to its last record
// boundary after a failed write and discards the poisoned buffered
// writer (bufio retains both its error and the unwritten remainder,
// which would otherwise wedge or corrupt every later append). Callers
// hold j.mu.
func (j *SegmentedJournal) rollbackLocked() {
	j.w = bufio.NewWriter(j.f)
	if err := j.f.Truncate(j.off); err != nil {
		// Torn bytes may remain mid-file; appending after them would be
		// corruption, so refuse everything until a reopen repairs.
		j.wedged = true
	}
}

// rotateLocked seals the active segment and opens the next. The new
// segment is opened BEFORE the old one is closed so a failed rotation
// (EIO on the open, say) leaves the journal still appending to the old,
// valid segment — the next append simply retries the rotation. Callers
// hold j.mu.
func (j *SegmentedJournal) rotateLocked() error {
	if err := j.w.Flush(); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	f, err := j.fs.OpenFile(segPath(j.cfg.Dir, j.seq+1), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("sched: rotating to segment %d: %w", j.seq+1, err)
	}
	_ = j.f.Close() // sealed: already flushed and fsynced above
	j.seq++
	j.f = f
	j.w = bufio.NewWriter(f)
	j.n = 0
	j.off = 0
	if j.cfg.OnRotate != nil {
		j.cfg.OnRotate()
	}
	return nil
}

// Compact folds the snapshot and every sealed segment into a new
// snapshot and deletes the absorbed segments. When the active segment
// holds records and no sealed segment exists yet, it is rotated first
// so a slow-trickle journal still converges to snapshot + empty tail.
// Safe to call concurrently with appends: sealed segments are immutable
// and only the rotation itself takes the journal lock.
func (j *SegmentedJournal) Compact() error {
	start := time.Now()
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return errors.New("sched: journal is closed")
	}
	if j.n > 0 {
		if err := j.rotateLocked(); err != nil {
			j.mu.Unlock()
			return err
		}
	}
	through := j.seq - 1 // everything before the (fresh) active segment
	j.mu.Unlock()

	snap, err := readSnapshot(j.fs, j.cfg.Dir)
	if err != nil {
		return err
	}
	seqs, err := listSegments(j.fs, j.cfg.Dir)
	if err != nil {
		return err
	}
	var sealed []int
	for _, seq := range seqs {
		if seq > snap.Through && seq <= through {
			sealed = append(sealed, seq)
		}
	}
	if len(sealed) == 0 && snap.Through >= through {
		return nil // nothing new to fold in
	}

	// Rebuild the full state the snapshot + sealed segments prove.
	var st JournalState
	index := make(map[string]int)
	for _, sub := range snap.Subs {
		index[sub.ID] = len(st.Subs)
		st.Subs = append(st.Subs, sub)
	}
	st.Probes = append(st.Probes, snap.Probes...)
	st.MaxID = snap.MaxID
	for _, seq := range sealed {
		f, err := j.fs.Open(segPath(j.cfg.Dir, seq))
		if err != nil {
			return err
		}
		// A sealed segment can still end in a torn line when the previous
		// process crashed mid-append and a later open repaired — or never
		// saw — that tail; scanRecords tolerates exactly that shape.
		_, err = scanRecords(f, func(rec journalRecord) {
			applyRecord(&st, index, rec)
		})
		_ = f.Close()
		if err != nil {
			return fmt.Errorf("sched: compacting segment %d: %w", seq, err)
		}
	}

	next := snapshotFile{Version: 1, Through: through, MaxID: st.MaxID}
	for _, sub := range st.Subs {
		// Status "" means the journal never proved a terminal state: the
		// job is still owed work and must survive compaction. Terminal
		// jobs are the dead history compaction exists to shed.
		if sub.Status == "" {
			next.Subs = append(next.Subs, sub)
		}
	}
	// One probe per (job, type, nodes): the cache keeps the first
	// measurement it sees (Prime never overwrites), so keep the first
	// here too — replay order is then irrelevant.
	seen := make(map[string]bool)
	for _, p := range st.Probes {
		key := fmt.Sprintf("%s|%s|%d", p.Job, p.Observation.Type, p.Observation.Nodes)
		if seen[key] {
			continue
		}
		seen[key] = true
		next.Probes = append(next.Probes, p)
	}

	if err := writeSnapshot(j.fs, j.cfg.Dir, next); err != nil {
		return err
	}
	for _, seq := range sealed {
		_ = j.fs.Remove(segPath(j.cfg.Dir, seq))
	}
	if j.cfg.OnCompact != nil {
		j.cfg.OnCompact(len(sealed), time.Since(start))
	}
	return nil
}

// writeSnapshot atomically replaces dir's snapshot: write temp, fsync,
// rename.
func writeSnapshot(fsys faultfs.FS, dir string, snap snapshotFile) error {
	b, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("sched: encoding snapshot: %w", err)
	}
	tmp := filepath.Join(dir, snapshotName+".tmp")
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fsys.Rename(tmp, filepath.Join(dir, snapshotName))
}

// compactLoop compacts on the configured cadence until Close.
func (j *SegmentedJournal) compactLoop() {
	defer close(j.done)
	t := time.NewTicker(j.cfg.CompactEvery)
	defer t.Stop()
	for {
		select {
		case <-j.stop:
			return
		case <-t.C:
			_ = j.Compact() // a failed compaction never loses data; retry next tick
		}
	}
}

// Close stops the compaction loop, flushes, and closes the active
// segment. Idempotent.
func (j *SegmentedJournal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	stop, done := j.stop, j.done
	err := j.w.Flush()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	return err
}
