package sched

import (
	"context"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mlcd/internal/mlcdsys"
)

// TestSegmentedCloseRacesCompactLoop closes segmented journals while
// their background compaction loops are mid-flight, over and over:
// Close must never deadlock, never leak the loop goroutine, and any
// snapshot.json.tmp a cut-short compaction left behind must be ignored
// and cleared by the next open. Run under -race in CI.
func TestSegmentedCloseRacesCompactLoop(t *testing.T) {
	baseline := goroutineCount()
	dir := t.TempDir()
	for round := 0; round < 20; round++ {
		j, err := OpenSegmented(SegmentedConfig{
			Dir:          dir,
			MaxRecords:   2, // rotate constantly so every tick has sealed segments
			CompactEvery: time.Millisecond,
		})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for i := 0; i < 10; i++ {
			rec := journalRecord{Type: "submit", ID: "job-0001", Job: "resnet-cifar10"}
			if err := j.append(rec); err != nil {
				t.Fatalf("round %d append %d: %v", round, i, err)
			}
		}
		// Close races whatever compaction the 1ms ticker has in flight.
		if err := j.Close(); err != nil {
			t.Fatalf("round %d close: %v", round, err)
		}
		if err := j.Close(); err != nil { // idempotent
			t.Fatalf("round %d second close: %v", round, err)
		}
	}
	awaitGoroutines(t, baseline)

	// Whatever the races left on disk, recovery is clean and the live
	// submission survives.
	st, _, err := ReplaySegmented(dir)
	if err != nil {
		t.Fatalf("replay after close races: %v", err)
	}
	if len(st.Subs) != 1 || st.Subs[0].ID != "job-0001" {
		t.Fatalf("recovered state = %+v", st)
	}
	// A fresh open clears any orphaned snapshot temp file.
	j, err := OpenSegmented(SegmentedConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = j.Close() }()
	if _, err := os.Stat(filepath.Join(dir, snapshotName+".tmp")); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("stale snapshot tmp survived reopen: %v", err)
	}
}

// TestSchedulerShutdownRacesCompaction is the same race one layer up:
// a scheduler with an aggressive compaction cadence is shut down while
// compactions fire, and must leave no goroutines behind.
func TestSchedulerShutdownRacesCompaction(t *testing.T) {
	baseline := goroutineCount()
	dir := t.TempDir()
	for round := 0; round < 5; round++ {
		s, err := New(newTestSystem(t), Config{
			Workers:           1,
			JournalDir:        dir,
			CompactEvery:      time.Millisecond,
			SegmentMaxRecords: 2,
		})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if _, err := s.Submit("resnet-cifar10", "acme", mlcdsys.Requirements{Budget: 100}); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		if err := s.Shutdown(ctx); err != nil {
			cancel()
			t.Fatalf("round %d shutdown: %v", round, err)
		}
		cancel()
	}
	awaitGoroutines(t, baseline)
	if _, _, err := ReplaySegmented(dir); err != nil {
		t.Fatalf("replay after shutdown races: %v", err)
	}
}
