package sched

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"mlcd/internal/cloud"
	"mlcd/internal/faultfs"
	"mlcd/internal/mlcdsys"
	"mlcd/internal/profiler"
	"mlcd/internal/search"
	"mlcd/internal/workload"
)

// appendDeadJobs journals n submit+done pairs starting at id seq start —
// the "dead history" compaction exists to shed.
func appendDeadJobs(t *testing.T, j *SegmentedJournal, start, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("job-%04d", start+i)
		if err := j.append(journalRecord{Type: "submit", ID: id, Job: "resnet-cifar10", Tenant: "t"}); err != nil {
			t.Fatal(err)
		}
		if err := j.append(journalRecord{Type: "done", ID: id, Status: StatusDone}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSegmentedRoundTripAndRotation(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "jnl")
	j, err := OpenSegmented(SegmentedConfig{Dir: dir, MaxRecords: 3})
	if err != nil {
		t.Fatal(err)
	}
	obs := search.SavedObservation{Type: "c5.4xlarge", Nodes: 2, Throughput: 100}
	if err := j.append(journalRecord{Type: "submit", ID: "job-0001", Job: "resnet-cifar10", Tenant: "acme", BudgetUSD: 50}); err != nil {
		t.Fatal(err)
	}
	if err := j.append(journalRecord{Type: "probe", Job: "resnet-cifar10", Observation: &obs, CostUSD: 2}); err != nil {
		t.Fatal(err)
	}
	if err := j.append(journalRecord{Type: "submit", ID: "job-0002", Job: "resnet-cifar10", Tenant: "globex"}); err != nil {
		t.Fatal(err)
	}
	if err := j.append(journalRecord{Type: "done", ID: "job-0001", Status: StatusDone}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	seqs, err := listSegments(faultfs.OS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) < 2 {
		t.Fatalf("4 appends at MaxRecords=3 left %d segment(s), want rotation", len(seqs))
	}

	st, rs, err := ReplaySegmented(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Subs) != 2 || st.MaxID != 2 || len(st.Probes) != 1 {
		t.Fatalf("replayed state = %+v", st)
	}
	if st.Subs[0].Status != StatusDone || st.Subs[1].Status != "" {
		t.Fatalf("statuses = %q / %q", st.Subs[0].Status, st.Subs[1].Status)
	}
	if rs.TailRecords != 4 || rs.SnapshotSubs != 0 {
		t.Fatalf("replay stats = %+v, want 4 tail records pre-compaction", rs)
	}
}

// TestSegmentedRecoveryFlatAsHistoryGrows is the acceptance criterion:
// after compaction, recovery replays only the live-job snapshot plus
// the (empty) tail — the same work whether 50 or 500 dead jobs came
// before. A design that replays history would see recovery cost grow
// 10× here.
func TestSegmentedRecoveryFlatAsHistoryGrows(t *testing.T) {
	replayCost := func(dead int) (ReplayStats, JournalState) {
		dir := filepath.Join(t.TempDir(), "jnl")
		j, err := OpenSegmented(SegmentedConfig{Dir: dir, MaxRecords: 16})
		if err != nil {
			t.Fatal(err)
		}
		// One live job first, then the dead pile, then compact.
		if err := j.append(journalRecord{Type: "submit", ID: "job-0001", Job: "resnet-cifar10", Tenant: "live"}); err != nil {
			t.Fatal(err)
		}
		appendDeadJobs(t, j, 2, dead)
		if err := j.Compact(); err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		st, rs, err := ReplaySegmented(dir)
		if err != nil {
			t.Fatal(err)
		}
		return rs, st
	}

	small, stSmall := replayCost(50)
	large, stLarge := replayCost(500)

	if small != large {
		t.Fatalf("recovery cost grew with dead history: 50 dead → %+v, 500 dead → %+v", small, large)
	}
	if small.SnapshotSubs != 1 || small.TailRecords != 0 {
		t.Fatalf("compacted recovery = %+v, want exactly the one live job and no tail", small)
	}
	if len(stSmall.Subs) != 1 || stSmall.Subs[0].ID != "job-0001" || stSmall.Subs[0].Status != "" {
		t.Fatalf("live job lost in compaction: %+v", stSmall.Subs)
	}
	// Dead jobs are shed, but their ID high-water mark is not: a
	// restarted scheduler must never re-mint a dead job's ID.
	if stSmall.MaxID != 51 || stLarge.MaxID != 501 {
		t.Fatalf("MaxID = %d / %d, want 51 / 501", stSmall.MaxID, stLarge.MaxID)
	}
}

// TestSegmentedCompactDedupesProbes: compaction keeps one probe per
// (job, type, nodes) — the first, matching the cache's Prime semantics.
func TestSegmentedCompactDedupesProbes(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "jnl")
	j, err := OpenSegmented(SegmentedConfig{Dir: dir, MaxRecords: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		obs := search.SavedObservation{Type: "c5.4xlarge", Nodes: 1 + i%2, Throughput: float64(100 + i)}
		if err := j.append(journalRecord{Type: "probe", Job: "resnet-cifar10", Observation: &obs, CostUSD: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	st, rs, err := ReplaySegmented(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Probes) != 2 {
		t.Fatalf("probes after compaction = %d, want 2 distinct deployments", len(st.Probes))
	}
	if st.Probes[0].Observation.Throughput != 100 || st.Probes[1].Observation.Throughput != 101 {
		t.Fatalf("compaction kept the wrong duplicates: %+v", st.Probes)
	}
	if rs.SnapshotProbes != 2 {
		t.Fatalf("replay stats = %+v", rs)
	}
}

// TestSegmentedCompactToleratesTornSealedSegment is the PR 4 regression
// satellite: a sealed segment whose tail was torn by a crash (and which
// the repair path may or may not have truncated yet) must compact
// cleanly — complete records kept, the torn one dropped.
func TestSegmentedCompactToleratesTornSealedSegment(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "jnl")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	// Sealed segment 1: two complete records, then a torn third — the
	// fsync the crash interrupted.
	torn := `{"type":"submit","id":"job-0001","job":"resnet-cifar10","tenant":"a"}` + "\n" +
		`{"type":"done","id":"job-0001","status":"done"}` + "\n" +
		`{"type":"submit","id":"job-00`
	if err := os.WriteFile(segPath(dir, 1), []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}
	// Active segment 2: a complete record appended by a later process.
	if err := os.WriteFile(segPath(dir, 2),
		[]byte(`{"type":"submit","id":"job-0003","job":"resnet-cifar10","tenant":"b"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	j, err := OpenSegmented(SegmentedConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Compact(); err != nil {
		t.Fatalf("compacting over a torn sealed segment: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	st, rs, err := ReplaySegmented(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Subs) != 1 || st.Subs[0].ID != "job-0003" {
		t.Fatalf("post-compaction state = %+v, want only the live job-0003", st.Subs)
	}
	if st.MaxID != 3 {
		t.Fatalf("MaxID = %d, want 3", st.MaxID)
	}
	if rs.TailRecords != 0 || rs.SnapshotSubs != 1 {
		t.Fatalf("replay stats = %+v, want everything in the snapshot", rs)
	}
	if seqs, _ := listSegments(faultfs.OS{}, dir); len(seqs) != 1 {
		t.Fatalf("segments after compaction = %v, want just the fresh active one", seqs)
	}
}

// TestSegmentedCrashBetweenSnapshotAndDelete: the crash window after the
// snapshot rename but before sealed segments are deleted must be
// idempotent — replay skips segments the snapshot already covers.
func TestSegmentedCrashBetweenSnapshotAndDelete(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "jnl")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := writeSnapshot(faultfs.OS{}, dir, snapshotFile{
		Version: 1, Through: 1, MaxID: 1,
		Subs: []RecoveredSub{{ID: "job-0001", Job: "resnet-cifar10", Tenant: "a"}},
	}); err != nil {
		t.Fatal(err)
	}
	// Segment 1 is already folded into the snapshot but survived the
	// crash; replaying it would double-register job-0001.
	if err := os.WriteFile(segPath(dir, 1),
		[]byte(`{"type":"submit","id":"job-0001","job":"resnet-cifar10","tenant":"a"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segPath(dir, 2),
		[]byte(`{"type":"submit","id":"job-0002","job":"resnet-cifar10","tenant":"b"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, rs, err := ReplaySegmented(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Subs) != 2 || st.Subs[0].ID != "job-0001" || st.Subs[1].ID != "job-0002" {
		t.Fatalf("replayed subs = %+v, want job-0001 (once) and job-0002", st.Subs)
	}
	if rs.TailSegments != 1 {
		t.Fatalf("replay stats = %+v, want the covered segment skipped", rs)
	}
}

// TestSchedulerSegmentedJournalRecovery drives the segmented journal
// through the real scheduler: jobs run to done, the journal compacts,
// and a restarted scheduler neither loses live jobs nor re-mints IDs.
func TestSchedulerSegmentedJournalRecovery(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "jnl")
	a, err := New(newTestSystem(t), Config{Workers: 1, JournalDir: dir, SegmentMaxRecords: 4})
	if err != nil {
		t.Fatal(err)
	}
	j1, err := a.Submit("resnet-cifar10", "acme", mlcdsys.Requirements{Budget: 100})
	if err != nil {
		t.Fatal(err)
	}
	awaitStatus(t, a, j1.ID, StatusDone)
	if err := a.CompactJournal(); err != nil {
		t.Fatal(err)
	}
	a.Close()

	st, _, err := ReplaySegmented(dir)
	if err != nil {
		t.Fatal(err)
	}
	compacted := make(map[string]bool)
	for _, p := range st.Probes {
		compacted[fmt.Sprintf("%s|%d", p.Observation.Type, p.Observation.Nodes)] = true
	}
	if len(compacted) == 0 {
		t.Fatal("first run journaled no probes")
	}

	var mu sync.Mutex
	measured := make(map[string]bool)
	b, err := New(newTestSystem(t), Config{
		Workers: 1, JournalDir: dir, SegmentMaxRecords: 4,
		ProfilerMiddleware: func(inner profiler.Profiler) profiler.Profiler {
			return profilerFunc(func(j workload.Job, d cloud.Deployment) profiler.Result {
				mu.Lock()
				measured[fmt.Sprintf("%s|%d", d.Type.Name, d.Nodes)] = true
				mu.Unlock()
				return inner.Profile(j, d)
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	// The done job was compacted away — dead history — but its ID
	// sequence must not be reused.
	j2, err := b.Submit("resnet-cifar10", "acme", mlcdsys.Requirements{Budget: 100})
	if err != nil {
		t.Fatal(err)
	}
	if j2.ID != "job-0002" {
		t.Fatalf("post-compaction ID = %s, want job-0002", j2.ID)
	}
	done := awaitStatus(t, b, j2.ID, StatusDone)
	if done.Report == nil || !done.Report.Satisfied {
		t.Fatalf("recovered report = %+v", done.Report)
	}
	// The first run's probes survived compaction and primed the cache:
	// the repeat search may explore NEW deployments, but must never
	// re-measure one the journal already paid for.
	mu.Lock()
	defer mu.Unlock()
	for key := range measured {
		if compacted[key] {
			t.Errorf("deployment %s re-profiled despite compacted journal", key)
		}
	}
}

// TestSegmentedBackgroundCompaction: the CompactEvery loop compacts
// without any explicit call.
func TestSegmentedBackgroundCompaction(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "jnl")
	j, err := OpenSegmented(SegmentedConfig{Dir: dir, MaxRecords: 4, CompactEvery: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	appendDeadJobs(t, j, 1, 20)
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap, err := readSnapshot(faultfs.OS{}, dir)
		if err != nil {
			t.Fatal(err)
		}
		if snap.Through > 0 && snap.MaxID == 20 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background compaction never caught up: %+v", snap)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}
