package search

import (
	"math"
	"testing"

	"mlcd/internal/cloud"
)

// FuzzDecodeObservation hammers the journal/persistence decode path with
// arbitrary wire records. Invariants: no panic on any input; a decode
// that succeeds must resolve to a live catalog type with the requested
// node count; and every successfully decoded observation must re-encode
// to the record it came from.
func FuzzDecodeObservation(f *testing.F) {
	cat := cloud.DefaultCatalog()
	f.Add("c5.4xlarge", 4, 250.0)
	f.Add("c5.4xlarge", 0, 0.0)
	f.Add("", 1, 1.0)
	f.Add("no-such-type", 8, -3.5)
	f.Add("p3.8xlarge", -1, math.Inf(1))
	f.Add("c5.4xlarge", 1<<30, math.NaN())

	f.Fuzz(func(t *testing.T, typ string, nodes int, throughput float64) {
		rec := SavedObservation{Type: typ, Nodes: nodes, Throughput: throughput}
		obs, err := DecodeObservation(rec, cat)
		if err != nil {
			return // rejected inputs just must not panic
		}
		if obs.Deployment.Type.Name != typ {
			t.Fatalf("decoded type %q from record %q", obs.Deployment.Type.Name, typ)
		}
		if obs.Deployment.Nodes != nodes || nodes < 1 {
			t.Fatalf("decoded %d nodes from record %d", obs.Deployment.Nodes, nodes)
		}
		back, ok := EncodeObservation(obs)
		if !ok {
			t.Fatalf("decoded observation %+v refuses to re-encode", obs)
		}
		sameThroughput := back.Throughput == throughput ||
			(math.IsNaN(back.Throughput) && math.IsNaN(throughput))
		if back.Type != typ || back.Nodes != nodes || !sameThroughput {
			t.Fatalf("round trip %+v → %+v → %+v", rec, obs, back)
		}
	})
}
