package search

import (
	"encoding/json"
	"fmt"
	"io"

	"mlcd/internal/cloud"
)

// SavedObservation is the stable on-disk form of one probe result: the
// deployment is stored by type name so a reload re-resolves it against
// the live catalog (prices and specs come from the catalog, not the
// file). SaveObservations documents and the scheduler's crash journal
// (internal/sched) share this record so observations persisted by either
// can warm-start later searches.
type SavedObservation struct {
	Type       string  `json:"type"`
	Nodes      int     `json:"nodes"`
	Throughput float64 `json:"throughput_samples_per_sec"`
}

// savedFile is the persisted document.
type savedFile struct {
	Version      int                `json:"version"`
	Job          string             `json:"job"`
	Observations []SavedObservation `json:"observations"`
}

// EncodeObservation converts an observation to its wire form; ok is
// false for observations that cannot be persisted (no deployment).
func EncodeObservation(o Observation) (SavedObservation, bool) {
	if o.Deployment.Nodes < 1 {
		return SavedObservation{}, false
	}
	return SavedObservation{
		Type:       o.Deployment.Type.Name,
		Nodes:      o.Deployment.Nodes,
		Throughput: o.Throughput,
	}, true
}

// DecodeObservation re-resolves a wire-form observation against cat.
func DecodeObservation(s SavedObservation, cat *cloud.Catalog) (Observation, error) {
	it, ok := cat.Lookup(s.Type)
	if !ok {
		return Observation{}, fmt.Errorf("search: saved observation references unknown type %q", s.Type)
	}
	if s.Nodes < 1 {
		return Observation{}, fmt.Errorf("search: saved observation has invalid node count %d", s.Nodes)
	}
	return Observation{
		Deployment: cloud.Deployment{Type: it, Nodes: s.Nodes},
		Throughput: s.Throughput,
	}, nil
}

// persistVersion guards the on-disk format.
const persistVersion = 1

// SaveObservations writes a search's measured observations as JSON, for
// warm-starting a later run of the same job (core.Options.WarmStart).
func SaveObservations(w io.Writer, jobName string, obs []Observation) error {
	doc := savedFile{Version: persistVersion, Job: jobName}
	for _, o := range obs {
		if s, ok := EncodeObservation(o); ok {
			doc.Observations = append(doc.Observations, s)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("search: saving observations: %w", err)
	}
	return nil
}

// LoadObservations reads observations saved by SaveObservations,
// re-resolving instance types against cat. It returns the job name the
// observations were measured for — callers must verify it matches before
// warm-starting, since throughput numbers do not transfer across jobs.
func LoadObservations(r io.Reader, cat *cloud.Catalog) (jobName string, obs []Observation, err error) {
	var doc savedFile
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return "", nil, fmt.Errorf("search: loading observations: %w", err)
	}
	if doc.Version != persistVersion {
		return "", nil, fmt.Errorf("search: unsupported observations version %d", doc.Version)
	}
	for _, s := range doc.Observations {
		o, err := DecodeObservation(s, cat)
		if err != nil {
			return "", nil, err
		}
		obs = append(obs, o)
	}
	return doc.Job, obs, nil
}

// ObservationsFromOutcome extracts the persistable observations from a
// finished search.
func ObservationsFromOutcome(o Outcome) []Observation {
	out := make([]Observation, 0, len(o.Steps))
	for _, s := range o.Steps {
		out = append(out, Observation{Deployment: s.Deployment, Throughput: s.Throughput})
	}
	return out
}
