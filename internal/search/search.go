// Package search defines the shared vocabulary of every deployment
// searcher in the repository: the paper's three user scenarios (§III-A),
// constraint sets, per-step traces, and the Outcome a searcher returns.
// HeterBO (internal/core), the baselines (internal/baselines), and Paleo
// (internal/paleo) all implement the Searcher interface, so experiments
// compare them uniformly.
package search

import (
	"fmt"
	"math"
	"time"

	"mlcd/internal/cloud"
	"mlcd/internal/fleetprior"
	"mlcd/internal/obs"
	"mlcd/internal/profiler"
	"mlcd/internal/workload"
)

// Scenario is one of the paper's three deployment goals.
type Scenario int

// The three scenarios of §III-A.
const (
	// FastestUnlimited: finish as fast as possible, unlimited budget.
	FastestUnlimited Scenario = iota
	// CheapestWithDeadline: finish before a deadline at the lowest cost.
	CheapestWithDeadline
	// FastestWithBudget: finish as fast as possible within a budget.
	FastestWithBudget
)

// String names the scenario as in the paper.
func (s Scenario) String() string {
	switch s {
	case FastestUnlimited:
		return "scenario1-fastest-unlimited"
	case CheapestWithDeadline:
		return "scenario2-cheapest-deadline"
	case FastestWithBudget:
		return "scenario3-fastest-budget"
	default:
		return fmt.Sprintf("Scenario(%d)", int(s))
	}
}

// Constraints carries the user-specified limits. The deadline and budget
// cover profiling PLUS training, as in the paper's evaluation (§V-B).
type Constraints struct {
	Deadline time.Duration // for CheapestWithDeadline; 0 = none
	Budget   float64       // for FastestWithBudget; 0 = none
}

// Validate checks the constraints fit the scenario.
func (c Constraints) Validate(s Scenario) error {
	switch s {
	case FastestUnlimited:
		return nil
	case CheapestWithDeadline:
		if c.Deadline <= 0 {
			return fmt.Errorf("search: %v needs a positive deadline", s)
		}
	case FastestWithBudget:
		if c.Budget <= 0 {
			return fmt.Errorf("search: %v needs a positive budget", s)
		}
	}
	return nil
}

// Step records one profiling decision.
type Step struct {
	Index          int
	Deployment     cloud.Deployment
	Throughput     float64 // measured samples/s (0 = OOM probe)
	ProfileTime    time.Duration
	ProfileCost    float64
	CumProfileTime time.Duration
	CumProfileCost float64
	Acquisition    float64 // score that selected this point (0 for init)
	Failed         bool    // probe failed for infrastructure reasons (censored: cost charged, no signal)
	Fidelity       float64 // sub-sampling fraction of the probe (0 = full fidelity)
	Note           string  // "init", "explore", "exploit", "prior-pruned" ...
}

// Outcome is what a searcher hands back: the chosen deployment and a full
// account of what the search itself consumed.
type Outcome struct {
	Searcher    string
	Job         workload.Job
	Scenario    Scenario
	Constraints Constraints

	Best           cloud.Deployment
	BestThroughput float64 // measured at the chosen deployment
	Found          bool    // false when nothing feasible was observed

	Steps       []Step
	ProfileTime time.Duration
	ProfileCost float64
	Stopped     string // why the search stopped
}

// MaxEstTrainTime is the "effectively never" ceiling on training-time
// estimates (≈73 centuries). Estimates are clamped here because the
// seconds→Duration conversion otherwise overflows int64 for a
// near-zero measured throughput and wraps *negative* — and a negative
// estimate would make the slowest deployment in the space look
// trivially deadline-feasible in every spentTime+tt comparison.
const MaxEstTrainTime = time.Duration(math.MaxInt64 / 4)

// EstTrainTime estimates training time at a measured throughput.
func EstTrainTime(j workload.Job, throughput float64) time.Duration {
	if throughput <= 0 {
		return MaxEstTrainTime
	}
	secs := j.TotalSamples() / throughput
	if secs >= MaxEstTrainTime.Seconds() {
		return MaxEstTrainTime
	}
	return time.Duration(secs * float64(time.Second))
}

// EstTrainCost estimates training cost for d at a measured throughput.
func EstTrainCost(j workload.Job, d cloud.Deployment, throughput float64) float64 {
	if throughput <= 0 {
		return math.Inf(1)
	}
	return d.CostFor(EstTrainTime(j, throughput))
}

// Searcher is a deployment-search strategy.
type Searcher interface {
	// Name identifies the strategy in experiment tables.
	Name() string
	// Search explores the space with prof and returns its choice.
	Search(j workload.Job, space *cloud.Space, scen Scenario, cons Constraints, prof profiler.Profiler) (Outcome, error)
}

// WarmStarter is implemented by searchers that can fold previously
// measured observations of the same job into a new search at zero
// profiling cost (HeterBO via core.Options.WarmStart). The scheduler's
// shared profiling cache uses it to spare repeat submissions the
// profiling bill.
type WarmStarter interface {
	Searcher
	// WithWarmStart returns a searcher seeded with obs; the receiver is
	// not modified.
	WithWarmStart(obs []Observation) Searcher
}

// FleetPriorStarter is implemented by searchers whose surrogate can
// start from a fleet meta-prior (internal/fleetprior): cross-job
// transfer curves learned from every tenant's journaled probes. Unlike
// WarmStarter — exact measurements of the *same* job, eligible as final
// picks — the fleet prior only shapes the surrogate's prior mean and
// variance; it never substitutes for a measurement. The scheduler
// arms it on every search when the fleet prior is enabled.
type FleetPriorStarter interface {
	Searcher
	// WithFleetPrior returns a searcher whose surrogate starts from the
	// prior; the receiver is not modified. A nil or empty prior must
	// leave the search bit-identical to the receiver's.
	WithFleetPrior(p *fleetprior.Prior) Searcher
}

// Traceable is implemented by searchers that can narrate their search to
// an observability sink (internal/obs): one event per probe with its
// heterogeneous cost and acquisition value, prior prunings, the stop
// decision, and the final pick. HeterBO implements it; the scheduler
// uses it to build the per-job timeline served at /v1/jobs/{id}/trace.
type Traceable interface {
	Searcher
	// WithTracer returns a searcher that emits events to sink; the
	// receiver is not modified.
	WithTracer(sink obs.EventSink) Searcher
}

// Observation pairs a deployment with its measured throughput.
type Observation struct {
	Deployment cloud.Deployment
	Throughput float64
}

// Objective maps an observation to the scalar each scenario maximizes:
// training speed for the time-focused scenarios, cost efficiency
// (throughput per $/h) when the goal is the cheapest deployment.
func Objective(scen Scenario, d cloud.Deployment, throughput float64) float64 {
	switch scen {
	case CheapestWithDeadline:
		return throughput / d.HourlyCost()
	default:
		return throughput
	}
}

// PickBest selects, among the observations, the best deployment that the
// remaining deadline/budget can still accommodate:
//   - CheapestWithDeadline: cheapest est. training cost whose est.
//     training time fits in (deadline − profiling time spent);
//   - FastestWithBudget: fastest whose est. training cost fits in
//     (budget − profiling spend);
//   - FastestUnlimited: fastest, full stop.
//
// The boolean reports whether any observation satisfied the constraint;
// when none does, the least-bad observation is returned (best effort).
func PickBest(j workload.Job, scen Scenario, cons Constraints, spentTime time.Duration, spentCost float64, obs []Observation) (Observation, bool) {
	if len(obs) == 0 {
		return Observation{}, false
	}
	type scored struct {
		o        Observation
		feasible bool
		score    float64 // smaller is better
	}
	best := scored{score: math.Inf(1)}
	bestInfeasible := scored{score: math.Inf(1)}
	for _, o := range obs {
		if o.Throughput <= 0 {
			continue // OOM probes can never be chosen
		}
		tt := EstTrainTime(j, o.Throughput)
		tc := EstTrainCost(j, o.Deployment, o.Throughput)
		var feasible bool
		var score float64
		switch scen {
		case CheapestWithDeadline:
			feasible = spentTime+tt <= cons.Deadline
			score = tc
		case FastestWithBudget:
			feasible = spentCost+tc <= cons.Budget
			score = tt.Seconds()
		default:
			feasible = true
			score = tt.Seconds()
		}
		if feasible && score < best.score {
			best = scored{o, true, score}
		}
		if score < bestInfeasible.score {
			bestInfeasible = scored{o, false, score}
		}
	}
	if best.feasible {
		return best.o, true
	}
	if math.IsInf(bestInfeasible.score, 1) {
		return Observation{}, false
	}
	return bestInfeasible.o, false
}
