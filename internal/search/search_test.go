package search

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"mlcd/internal/cloud"
	"mlcd/internal/workload"
)

var cat = cloud.DefaultCatalog()

func dep(t *testing.T, name string, n int) cloud.Deployment {
	t.Helper()
	return cloud.NewDeployment(cat.MustLookup(name), n)
}

func TestScenarioStrings(t *testing.T) {
	if FastestUnlimited.String() != "scenario1-fastest-unlimited" ||
		CheapestWithDeadline.String() != "scenario2-cheapest-deadline" ||
		FastestWithBudget.String() != "scenario3-fastest-budget" {
		t.Fatal("scenario names wrong")
	}
	if Scenario(9).String() == "" {
		t.Fatal("unknown scenario must render")
	}
}

func TestConstraintsValidate(t *testing.T) {
	if err := (Constraints{}).Validate(FastestUnlimited); err != nil {
		t.Fatalf("scenario 1 needs no constraints: %v", err)
	}
	if err := (Constraints{}).Validate(CheapestWithDeadline); err == nil {
		t.Fatal("scenario 2 without deadline must fail")
	}
	if err := (Constraints{Deadline: time.Hour}).Validate(CheapestWithDeadline); err != nil {
		t.Fatal(err)
	}
	if err := (Constraints{}).Validate(FastestWithBudget); err == nil {
		t.Fatal("scenario 3 without budget must fail")
	}
	if err := (Constraints{Budget: 50}).Validate(FastestWithBudget); err != nil {
		t.Fatal(err)
	}
}

func TestEstTrainTimeAndCost(t *testing.T) {
	j := workload.ResNetCIFAR10 // 2M samples
	d := dep(t, "c5.4xlarge", 10)
	tt := EstTrainTime(j, 100) // 2e6/100 = 20 000 s
	if math.Abs(tt.Seconds()-20000) > 1 {
		t.Fatalf("EstTrainTime = %v", tt)
	}
	// 20 000 s at $6.80/h.
	want := 6.8 * 20000 / 3600
	if got := EstTrainCost(j, d, 100); math.Abs(got-want) > 1e-9 {
		t.Fatalf("EstTrainCost = %v, want %v", got, want)
	}
	if !math.IsInf(EstTrainCost(j, d, 0), 1) {
		t.Fatal("zero throughput must cost +Inf")
	}
	if EstTrainTime(j, 0) < time.Duration(math.MaxInt64/8) {
		t.Fatal("zero throughput must take effectively forever")
	}
}

func TestObjectiveTransform(t *testing.T) {
	d := dep(t, "c5.4xlarge", 10) // $6.80/h
	if got := Objective(FastestUnlimited, d, 140); got != 140 {
		t.Fatalf("scenario1 objective = %v", got)
	}
	if got := Objective(FastestWithBudget, d, 140); got != 140 {
		t.Fatalf("scenario3 objective = %v", got)
	}
	if got := Objective(CheapestWithDeadline, d, 140); math.Abs(got-140/6.8) > 1e-12 {
		t.Fatalf("scenario2 objective = %v, want throughput per $/h", got)
	}
}

func TestPickBestScenario1TakesFastest(t *testing.T) {
	j := workload.ResNetCIFAR10
	obs := []Observation{
		{dep(t, "c5.4xlarge", 1), 16},
		{dep(t, "c5.4xlarge", 30), 160},
		{dep(t, "c5.4xlarge", 50), 140},
	}
	got, ok := PickBest(j, FastestUnlimited, Constraints{}, 0, 0, obs)
	if !ok || got.Deployment.Nodes != 30 {
		t.Fatalf("PickBest = %v, %v", got.Deployment, ok)
	}
}

func TestPickBestScenario2CheapestWithinDeadline(t *testing.T) {
	j := workload.ResNetCIFAR10 // 2M samples
	// 1 node: thr 16 → 34.7 h (too slow for 6 h); 30 nodes: 160 → 3.47 h.
	obs := []Observation{
		{dep(t, "c5.4xlarge", 1), 16},
		{dep(t, "c5.4xlarge", 30), 160},
		{dep(t, "c5.4xlarge", 60), 170},
	}
	got, ok := PickBest(j, CheapestWithDeadline, Constraints{Deadline: 6 * time.Hour}, time.Hour, 0, obs)
	if !ok {
		t.Fatal("a feasible pick exists")
	}
	// 30 nodes is cheaper than 60 at similar speed; 1 node is infeasible.
	if got.Deployment.Nodes != 30 {
		t.Fatalf("picked %v", got.Deployment)
	}
}

func TestPickBestScenario2AccountsForSpentTime(t *testing.T) {
	j := workload.ResNetCIFAR10
	obs := []Observation{{dep(t, "c5.4xlarge", 30), 160}} // 3.47 h train
	// With 3 h already burned on profiling, a 6 h deadline fails.
	if _, ok := PickBest(j, CheapestWithDeadline, Constraints{Deadline: 6 * time.Hour}, 3*time.Hour, 0, obs); ok {
		t.Fatal("spent profiling time must count against the deadline")
	}
	if _, ok := PickBest(j, CheapestWithDeadline, Constraints{Deadline: 8 * time.Hour}, 3*time.Hour, 0, obs); !ok {
		t.Fatal("8 h deadline leaves room")
	}
}

func TestPickBestScenario3FastestWithinBudget(t *testing.T) {
	j := workload.ResNetCIFAR10
	obs := []Observation{
		{dep(t, "c5.4xlarge", 1), 16},   // ≈$23.6 train
		{dep(t, "c5.4xlarge", 30), 160}, // ≈$70.8 train
	}
	got, ok := PickBest(j, FastestWithBudget, Constraints{Budget: 100}, 0, 10, obs)
	if !ok || got.Deployment.Nodes != 30 {
		t.Fatalf("pick = %v, %v", got.Deployment, ok)
	}
	// With $70 already spent, only the single node fits.
	got, ok = PickBest(j, FastestWithBudget, Constraints{Budget: 100}, 0, 70, obs)
	if !ok || got.Deployment.Nodes != 1 {
		t.Fatalf("pick under tight budget = %v, %v", got.Deployment, ok)
	}
}

func TestPickBestInfeasibleFallsBackBestEffort(t *testing.T) {
	j := workload.ResNetCIFAR10
	obs := []Observation{
		{dep(t, "c5.4xlarge", 1), 16},
		{dep(t, "c5.4xlarge", 30), 160},
	}
	got, ok := PickBest(j, FastestWithBudget, Constraints{Budget: 1}, 0, 0, obs)
	if ok {
		t.Fatal("nothing fits a $1 budget")
	}
	if got.Deployment.Nodes != 30 {
		t.Fatalf("best effort must still return the fastest, got %v", got.Deployment)
	}
}

func TestPickBestSkipsOOMObservations(t *testing.T) {
	j := workload.ResNetCIFAR10
	obs := []Observation{
		{dep(t, "c5.4xlarge", 10), 0}, // OOM
		{dep(t, "c5.4xlarge", 5), 70},
	}
	got, ok := PickBest(j, FastestUnlimited, Constraints{}, 0, 0, obs)
	if !ok || got.Deployment.Nodes != 5 {
		t.Fatalf("pick = %v, %v", got.Deployment, ok)
	}
	if _, ok := PickBest(j, FastestUnlimited, Constraints{}, 0, 0, obs[:1]); ok {
		t.Fatal("all-OOM observations must yield no pick")
	}
}

func TestPickBestEmpty(t *testing.T) {
	if _, ok := PickBest(workload.ResNetCIFAR10, FastestUnlimited, Constraints{}, 0, 0, nil); ok {
		t.Fatal("empty observations must yield no pick")
	}
}

func TestObservationPersistenceRoundTrip(t *testing.T) {
	obs := []Observation{
		{dep(t, "c5.4xlarge", 10), 113.2},
		{dep(t, "p2.xlarge", 3), 0}, // OOM probes persist too
	}
	var buf bytes.Buffer
	if err := SaveObservations(&buf, "resnet-cifar10", obs); err != nil {
		t.Fatal(err)
	}
	job, got, err := LoadObservations(&buf, cat)
	if err != nil {
		t.Fatal(err)
	}
	if job != "resnet-cifar10" {
		t.Fatalf("job = %q", job)
	}
	if len(got) != 2 {
		t.Fatalf("loaded %d observations", len(got))
	}
	if got[0].Deployment != obs[0].Deployment || got[0].Throughput != obs[0].Throughput {
		t.Fatalf("round trip mangled %+v", got[0])
	}
	// The reloaded deployment carries live catalog pricing.
	if got[0].Deployment.Type.PricePerHr != 0.68 {
		t.Fatalf("price not re-resolved: %v", got[0].Deployment.Type.PricePerHr)
	}
}

func TestLoadObservationsRejectsGarbage(t *testing.T) {
	if _, _, err := LoadObservations(strings.NewReader("{"), cat); err == nil {
		t.Fatal("malformed JSON must error")
	}
	if _, _, err := LoadObservations(strings.NewReader(`{"version":99}`), cat); err == nil {
		t.Fatal("unknown version must error")
	}
	bad := `{"version":1,"job":"x","observations":[{"type":"m9.huge","nodes":1,"throughput_samples_per_sec":5}]}`
	if _, _, err := LoadObservations(strings.NewReader(bad), cat); err == nil {
		t.Fatal("unknown type must error")
	}
	bad2 := `{"version":1,"job":"x","observations":[{"type":"c5.large","nodes":0,"throughput_samples_per_sec":5}]}`
	if _, _, err := LoadObservations(strings.NewReader(bad2), cat); err == nil {
		t.Fatal("invalid node count must error")
	}
}

func TestObservationsFromOutcome(t *testing.T) {
	o := Outcome{Steps: []Step{
		{Deployment: dep(t, "c5.large", 1), Throughput: 3},
		{Deployment: dep(t, "c5.large", 2), Throughput: 6},
	}}
	obs := ObservationsFromOutcome(o)
	if len(obs) != 2 || obs[1].Throughput != 6 {
		t.Fatalf("obs = %+v", obs)
	}
}

// Property: when PickBest reports ok, the pick satisfies the constraint;
// when it reports !ok, no observation does.
func TestQuickPickBestSoundAndComplete(t *testing.T) {
	j := workload.ResNetCIFAR10
	types := cat.Types()
	f := func(seed int64, nObs uint8, budgetRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nObs%8) + 1
		obs := make([]Observation, n)
		for i := range obs {
			it := types[rng.Intn(len(types))]
			obs[i] = Observation{
				Deployment: cloud.Deployment{Type: it, Nodes: rng.Intn(50) + 1},
				Throughput: rng.Float64() * 500,
			}
		}
		budget := float64(budgetRaw%500) + 1
		cons := Constraints{Budget: budget}
		pick, ok := PickBest(j, FastestWithBudget, cons, 0, 0, obs)
		if ok {
			// Soundness: the pick fits, and nothing feasible is faster.
			if EstTrainCost(j, pick.Deployment, pick.Throughput) > budget {
				return false
			}
			for _, o := range obs {
				if o.Throughput <= 0 {
					continue
				}
				if EstTrainCost(j, o.Deployment, o.Throughput) <= budget &&
					EstTrainTime(j, o.Throughput) < EstTrainTime(j, pick.Throughput) {
					return false
				}
			}
			return true
		}
		// Completeness: nothing fits.
		for _, o := range obs {
			if o.Throughput > 0 && EstTrainCost(j, o.Deployment, o.Throughput) <= budget {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestEstTrainTimeClampsNearZeroThroughput pins the overflow guard: a
// denormal-small measured throughput must saturate at MaxEstTrainTime,
// not wrap the seconds→Duration conversion negative — a negative
// estimate made the slowest deployment in a space look trivially
// deadline-feasible.
func TestEstTrainTimeClampsNearZeroThroughput(t *testing.T) {
	j := workload.ResNetCIFAR10
	for _, thr := range []float64{0, -1, 1e-300, 1e-12, math.SmallestNonzeroFloat64} {
		got := EstTrainTime(j, thr)
		if got != MaxEstTrainTime {
			t.Errorf("EstTrainTime(thr=%g) = %v, want MaxEstTrainTime", thr, got)
		}
		if got < 0 {
			t.Errorf("EstTrainTime(thr=%g) wrapped negative: %v", thr, got)
		}
	}
	// A throughput just past the clamp boundary still estimates normally.
	if got := EstTrainTime(j, 1); got <= 0 || got == MaxEstTrainTime {
		t.Errorf("EstTrainTime(thr=1) = %v, want a finite positive estimate", got)
	}
}

// TestPickBestNotFooledByClampedEstimate: an observation so slow its
// training estimate clamps must never be reported deadline-feasible —
// before the clamp the wrapped-negative estimate passed any deadline. A
// decade is far beyond any real Tmax yet far below the clamp ceiling.
func TestPickBestNotFooledByClampedEstimate(t *testing.T) {
	obs := []Observation{{Deployment: dep(t, "c5.large", 1), Throughput: 1e-300}}
	cons := Constraints{Deadline: 10 * 365 * 24 * time.Hour}
	got, ok := PickBest(workload.ResNetCIFAR10, CheapestWithDeadline, cons, 0, 0, obs)
	if ok {
		t.Fatalf("clamped estimate reported feasible: %+v", got)
	}
	if got.Deployment.Nodes != 1 {
		t.Fatalf("best-effort fallback should still surface the observation, got %+v", got)
	}
}
