package shardplane

import (
	"fmt"
	"sync"
	"time"
)

// Shard health: the plane probes every shard's journal on a cadence
// (sched.Scheduler.ProbeJournal appends and fsyncs a no-op health
// record) and folds in the shard's own consecutive append-failure
// streak from real traffic. DegradedAfter consecutive failures flip the
// shard to degraded: the ring stops placing NEW tenants on it, and
// submissions from its existing tenants are refused with
// ErrShardDegraded (the API layer turns that into 503 + Retry-After)
// rather than silently accepted into a scheduler that cannot persist
// them. The first successful probe re-admits the shard — recovery needs
// no operator action beyond fixing the disk.

// ErrShardDegraded refuses a submission whose home shard cannot
// currently persist journal records. Callers should retry later; the
// tenant's history is intact and the shard re-admits itself once
// journal writes succeed again.
var ErrShardDegraded = fmt.Errorf("shardplane: shard journal degraded; retry later")

// DefaultDegradedAfter is how many consecutive journal failures
// (probe or real append) degrade a shard.
const DefaultDegradedAfter = 3

// ShardHealth is one shard's externally visible health.
type ShardHealth struct {
	Shard     int    `json:"shard"`
	State     string `json:"state"` // "healthy" | "degraded"
	ErrStreak int    `json:"err_streak,omitempty"`
	LastError string `json:"last_error,omitempty"`
}

// PlaneHealth aggregates every shard. State is "healthy" when every
// shard is healthy, "degraded" while any shard is out of the ring, and
// "down" when no shard can persist — only then should a load balancer
// stop sending traffic, since a degraded plane still admits new tenants
// on its healthy shards.
type PlaneHealth struct {
	State    string        `json:"state"` // "healthy" | "degraded" | "down"
	Healthy  int           `json:"healthy_shards"`
	Degraded int           `json:"degraded_shards"`
	Shards   []ShardHealth `json:"shards"`
}

// shardHealthRec is the plane's internal per-shard record.
type shardHealthRec struct {
	mu         sync.Mutex
	degraded   bool
	probeFails int // consecutive ProbeJournal failures
	lastErr    string
}

// CheckHealth runs one probe round over every shard, degrading and
// re-admitting as warranted. The background loop calls it on
// HealthEvery; tests call it directly for deterministic rounds.
func (p *Plane) CheckHealth() {
	for i := range p.health {
		p.checkShard(i)
	}
}

func (p *Plane) checkShard(i int) {
	s := p.shard(i)
	h := p.health[i]
	err := s.ProbeJournal()

	h.mu.Lock()
	defer h.mu.Unlock()
	if err != nil {
		h.probeFails++
		h.lastErr = err.Error()
	} else {
		h.probeFails = 0
	}
	// Real traffic may have hit the streak threshold between probes; the
	// scheduler's own consecutive append-failure count covers that.
	streak := h.probeFails
	if n := int(s.JournalErrStreak()); n > streak {
		streak = n
	}
	switch {
	case !h.degraded && streak >= p.degradedAfter:
		h.degraded = true
		p.degradedTotal[i].Inc()
		p.healthyGauge[i].Set(0)
	case h.degraded && err == nil && streak == 0:
		h.degraded = false
		h.lastErr = ""
		p.readmitTotal[i].Inc()
		p.healthyGauge[i].Set(1)
	}
}

// Degraded reports whether shard i is currently out of the ring.
func (p *Plane) Degraded(i int) bool {
	h := p.health[i]
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.degraded
}

// Health snapshots every shard's health and the plane-wide state.
func (p *Plane) Health() PlaneHealth {
	out := PlaneHealth{Shards: make([]ShardHealth, len(p.health))}
	for i, h := range p.health {
		s := p.shard(i)
		h.mu.Lock()
		sh := ShardHealth{Shard: i, State: "healthy", ErrStreak: h.probeFails, LastError: h.lastErr}
		if n := int(s.JournalErrStreak()); n > sh.ErrStreak {
			sh.ErrStreak = n
		}
		if h.degraded {
			sh.State = "degraded"
			out.Degraded++
		} else {
			out.Healthy++
		}
		h.mu.Unlock()
		out.Shards[i] = sh
	}
	switch {
	case out.Healthy == 0:
		out.State = "down"
	case out.Degraded > 0:
		out.State = "degraded"
	default:
		out.State = "healthy"
	}
	return out
}

// healthLoop probes on a fixed cadence until Close or Shutdown.
func (p *Plane) healthLoop(every time.Duration) {
	defer close(p.healthDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-p.healthStop:
			return
		case <-t.C:
			p.CheckHealth()
		}
	}
}
