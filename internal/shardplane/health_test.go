package shardplane

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"mlcd/internal/faultfs"
	"mlcd/internal/mlcdsys"
	"mlcd/internal/sched"
)

// faultPlane builds a journaled 2-shard plane over an in-memory
// fault-injecting filesystem, with both background loops disabled so
// tests drive merge and health rounds deterministically.
func faultPlane(t *testing.T) (*Plane, *faultfs.Injector) {
	t.Helper()
	inj := faultfs.NewInjector(faultfs.NewMem(), rand.New(rand.NewSource(1)))
	p, err := New(newTestSystem(t), Config{
		Shards: 2, Workers: 1,
		JournalDir:    "plane",
		FS:            inj,
		MergeEvery:    -1,
		HealthEvery:   -1,
		DegradedAfter: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p, inj
}

// TestShardDegradedAndReadmission is the degraded-mode end-to-end: one
// shard's journal turns persistently unwritable, health probes flip it
// to degraded, its existing tenants are refused with ErrShardDegraded
// while NEW tenants keep being admitted on the healthy shard, /v1/health
// material reports it, and the shard re-admits itself once writes
// succeed again. Run under -race in CI.
func TestShardDegradedAndReadmission(t *testing.T) {
	p, inj := faultPlane(t)

	t1 := tenantOnShard(t, p.Ring(), 1)
	j, err := p.Submit("resnet-cifar10", t1, mlcdsys.Requirements{Budget: 100})
	if err != nil {
		t.Fatal(err)
	}
	awaitStatus(t, p, j.ID, sched.StatusDone)

	// Healthy baseline: a probe round changes nothing.
	p.CheckHealth()
	if h := p.Health(); h.State != "healthy" || h.Healthy != 2 {
		t.Fatalf("baseline health = %+v", h)
	}

	// Shard 1's disk dies: every fsync under its journal dir fails.
	inj.SetPlan([]faultfs.Fault{
		{Op: faultfs.OpSync, Path: "shard-1", Mode: faultfs.ModeSyncFail, Nth: 1, Persist: true},
	})
	for i := 0; i < DefaultDegradedAfter; i++ {
		if p.Degraded(1) {
			t.Fatalf("degraded after only %d probe failures", i)
		}
		p.CheckHealth()
	}
	if !p.Degraded(1) || p.Degraded(0) {
		t.Fatalf("want shard 1 degraded only: %v %v", p.Degraded(0), p.Degraded(1))
	}
	h := p.Health()
	if h.State != "degraded" || h.Degraded != 1 || h.Shards[1].State != "degraded" ||
		h.Shards[1].ErrStreak < DefaultDegradedAfter || h.Shards[1].LastError == "" {
		t.Fatalf("health = %+v", h)
	}

	// The existing shard-1 tenant is refused — placing it elsewhere would
	// fork its journal history — with a retryable, typed error.
	if _, err := p.Submit("resnet-cifar10", t1, mlcdsys.Requirements{Budget: 100}); !errors.Is(err, ErrShardDegraded) {
		t.Fatalf("existing tenant on degraded shard: err = %v, want ErrShardDegraded", err)
	}
	if p.rejected.Value() != 1 {
		t.Fatalf("rejected counter = %v, want 1", p.rejected.Value())
	}

	// A NEW tenant whose home is the degraded shard is placed on the
	// healthy one — the plane keeps admitting business.
	fresh := ""
	for i := 0; i < 100000; i++ {
		cand := fmt.Sprintf("fresh-%d", i)
		if p.Ring().Shard(cand) == 1 {
			fresh = cand
			break
		}
	}
	if fresh == "" {
		t.Fatal("no fresh tenant maps to shard 1")
	}
	jr, err := p.Submit("resnet-cifar10", fresh, mlcdsys.Requirements{Budget: 100})
	if err != nil {
		t.Fatalf("new tenant during degradation: %v", err)
	}
	if p.rerouted.Value() != 1 {
		t.Fatalf("rerouted counter = %v, want 1", p.rerouted.Value())
	}
	awaitStatus(t, p, jr.ID, sched.StatusDone)
	if got := p.ShardFor(fresh); got != 1 {
		t.Fatalf("test premise broken: fresh tenant homes on shard %d", got)
	}

	// Tenants homed on the healthy shard never notice.
	t0 := tenantOnShard(t, p.Ring(), 0)
	j0, err := p.Submit("resnet-cifar10", t0, mlcdsys.Requirements{Budget: 100})
	if err != nil {
		t.Fatalf("healthy-shard tenant: %v", err)
	}
	awaitStatus(t, p, j0.ID, sched.StatusDone)

	// Storage recovers; the next successful probe re-admits the shard.
	inj.Heal()
	p.CheckHealth()
	if p.Degraded(1) {
		t.Fatal("shard 1 not re-admitted after successful probe")
	}
	if h := p.Health(); h.State != "healthy" || h.Shards[1].LastError != "" {
		t.Fatalf("post-recovery health = %+v", h)
	}
	if p.readmitTotal[1].Value() != 1 || p.degradedTotal[1].Value() != 1 {
		t.Fatalf("transition counters = %v/%v, want 1/1",
			p.degradedTotal[1].Value(), p.readmitTotal[1].Value())
	}
	// The refused tenant's home shard serves it again.
	j2, err := p.Submit("resnet-cifar10", t1, mlcdsys.Requirements{Budget: 100})
	if err != nil {
		t.Fatal(err)
	}
	awaitStatus(t, p, j2.ID, sched.StatusDone)
}

// TestAllShardsDegradedRefuses: with no healthy shard left, even new
// tenants are refused (the API maps this to a plane-wide 503).
func TestAllShardsDegradedRefuses(t *testing.T) {
	p, inj := faultPlane(t)
	inj.SetPlan([]faultfs.Fault{
		{Op: faultfs.OpSync, Path: "shard-", Mode: faultfs.ModeSyncFail, Nth: 1, Persist: true},
	})
	for i := 0; i < DefaultDegradedAfter; i++ {
		p.CheckHealth()
	}
	if h := p.Health(); h.State != "down" || h.Healthy != 0 {
		t.Fatalf("health = %+v", h)
	}
	if _, err := p.Submit("resnet-cifar10", "anyone", mlcdsys.Requirements{Budget: 100}); !errors.Is(err, ErrShardDegraded) {
		t.Fatalf("err = %v, want ErrShardDegraded", err)
	}
}

// TestRingShardExcluding pins the fallback-placement contract.
func TestRingShardExcluding(t *testing.T) {
	r := NewRing(3, 64)
	none := func(int) bool { return false }
	for _, tenant := range []string{"a", "b", "c", "acme", ""} {
		if got, want := r.ShardExcluding(tenant, none), r.Shard(tenant); got != want {
			t.Fatalf("no exclusions: ShardExcluding(%q) = %d, want %d", tenant, got, want)
		}
	}
	// Excluding the home shard reroutes deterministically to another.
	tenant := "acme"
	home := r.Shard(tenant)
	alt := r.ShardExcluding(tenant, func(s int) bool { return s == home })
	if alt == home || alt < 0 {
		t.Fatalf("alt = %d (home %d)", alt, home)
	}
	if again := r.ShardExcluding(tenant, func(s int) bool { return s == home }); again != alt {
		t.Fatalf("fallback not deterministic: %d vs %d", again, alt)
	}
	// All shards excluded → -1.
	if got := r.ShardExcluding(tenant, func(int) bool { return true }); got != -1 {
		t.Fatalf("all excluded: got %d, want -1", got)
	}
}

// TestRestartShardRecovers is the process-level crash drill: kill and
// rebuild one shard, verify its journal replay restores terminal
// statuses, the shared snapshot tier stays warm, and the plane reports
// a recovery time.
func TestRestartShardRecovers(t *testing.T) {
	p, err := New(newTestSystem(t), Config{
		Shards: 2, Workers: 1,
		JournalDir:  t.TempDir(),
		MergeEvery:  -1,
		HealthEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	t1 := tenantOnShard(t, p.Ring(), 1)
	j, err := p.Submit("resnet-cifar10", t1, mlcdsys.Requirements{Budget: 100})
	if err != nil {
		t.Fatal(err)
	}
	awaitStatus(t, p, j.ID, sched.StatusDone)
	p.MergeNow()
	warm := p.Stats().SnapshotEntries
	if warm == 0 {
		t.Fatal("no snapshot entries before restart")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	d, err := p.RestartShard(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatalf("recovery duration = %v", d)
	}

	// Replay restored the finished job with its terminal status — not
	// re-enqueued, not forgotten.
	got, ok := p.Get(j.ID)
	if !ok || got.Status != sched.StatusDone {
		t.Fatalf("after restart: %+v ok=%v", got, ok)
	}
	// The shared cache tier is still warm: the restarted shard's replayed
	// probes merged back in.
	if after := p.Stats().SnapshotEntries; after < warm {
		t.Fatalf("snapshot shrank across restart: %d -> %d", warm, after)
	}
	// The restarted shard accepts new work.
	j2, err := p.Submit("resnet-cifar10", t1, mlcdsys.Requirements{Budget: 100})
	if err != nil {
		t.Fatal(err)
	}
	awaitStatus(t, p, j2.ID, sched.StatusDone)
}
