package shardplane

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"mlcd/internal/cloud"
	"mlcd/internal/mlcdsys"
	"mlcd/internal/profiler"
	"mlcd/internal/workload"
)

// goroutineCount reports the current goroutine count after giving the
// runtime a moment to retire goroutines that have already returned.
func goroutineCount() int {
	runtime.Gosched()
	return runtime.NumGoroutine()
}

// awaitGoroutines polls until the goroutine count drops back to at most
// want, failing with a full stack dump if it never does: the dump names
// the leaked goroutine outright.
func awaitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if goroutineCount() <= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines never returned to %d (now %d); stacks:\n%s",
		want, goroutineCount(), buf[:n])
}

// TestPlaneCloseNoGoroutineLeak: a graceful drain of a multi-shard
// plane — shard workers on every shard, plus the snapshot-merge loop —
// must leave no goroutines behind. The merge cadence is deliberately
// tight so the loop is demonstrably running when Close lands.
func TestPlaneCloseNoGoroutineLeak(t *testing.T) {
	baseline := goroutineCount()
	p, err := New(newTestSystem(t), Config{Shards: 3, Workers: 2, MergeEvery: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t0 := tenantOnShard(t, p.Ring(), 0)
	if _, err := p.Submit("resnet-cifar10", t0, mlcdsys.Requirements{Budget: 100}); err != nil {
		t.Fatal(err)
	}
	p.Close()
	p.Close() // idempotent: a double close must not panic or hang
	awaitGoroutines(t, baseline)
}

// TestPlaneShutdownNoGoroutineLeak wedges a probe on one shard past the
// drain deadline, forcing Shutdown down its abort path, and verifies the
// error surfaces AND that every plane goroutine — all shards' workers
// and the merge loop — exits once the probe un-wedges.
func TestPlaneShutdownNoGoroutineLeak(t *testing.T) {
	baseline := goroutineCount()

	gate := make(chan struct{})
	started := make(chan struct{}, 16)
	p, err := New(newTestSystem(t), Config{
		Shards: 2, Workers: 1, MergeEvery: time.Millisecond,
		ProfilerMiddleware: func(inner profiler.Profiler) profiler.Profiler {
			return profilerFunc(func(j workload.Job, d cloud.Deployment) profiler.Result {
				started <- struct{}{}
				<-gate
				return inner.Profile(j, d)
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t0 := tenantOnShard(t, p.Ring(), 0)
	if _, err := p.Submit("resnet-cifar10", t0, mlcdsys.Requirements{Budget: 100}); err != nil {
		t.Fatal(err)
	}
	<-started // shard 0's worker is now wedged mid-probe

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := p.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want context.DeadlineExceeded", err)
	}

	close(gate)
	for {
		select {
		case <-started: // later probes of the same drain, if any
			continue
		default:
		}
		break
	}
	awaitGoroutines(t, baseline)
}
