package shardplane

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"mlcd/internal/faultfs"
	"mlcd/internal/fleetprior"
	"mlcd/internal/mlcdsys"
	"mlcd/internal/obs"
	"mlcd/internal/profiler"
	"mlcd/internal/sched"
	"mlcd/internal/workload"
)

// Config assembles a Plane.
type Config struct {
	// Shards is the number of independent scheduler shards (default 2).
	Shards int
	// Replicas is the ring's virtual-node count per shard
	// (0 → DefaultReplicas).
	Replicas int
	// Workers is the search worker-pool size of EACH shard (default 1).
	Workers int
	// QueueSize bounds EACH shard's submission queue (default 64).
	QueueSize int
	// Jobs is the submission menu shared by every shard (nil → every
	// predefined workload).
	Jobs map[string]workload.Job
	// JournalDir enables per-shard segmented journals under
	// JournalDir/shard-N ("" → no journaling). A restarted plane — even
	// one restarted with a different shard count — replays each shard
	// directory it finds.
	JournalDir string
	// CompactEvery is each shard journal's background compaction cadence
	// (0 = on demand only).
	CompactEvery time.Duration
	// SegmentMaxRecords seals a journal segment after this many appends
	// (0 → the sched default).
	SegmentMaxRecords int
	// MergeEvery is the cache snapshot merge cadence (0 → 1s; < 0
	// disables the loop — tests then drive MergeNow explicitly).
	MergeEvery time.Duration
	// ProfilerMiddleware wraps each shard's measuring profiler inside its
	// cache (instrumentation; see sched.Config.ProfilerMiddleware).
	ProfilerMiddleware func(profiler.Profiler) profiler.Profiler
	// Traces is the plane-wide timeline recorder shared by all shards
	// (nil → a fresh one). Job IDs are globally unique, so one recorder
	// serves every shard.
	Traces *obs.Recorder
	// FS is the storage under every shard journal (nil → the real
	// filesystem). The storage-fault test hook; see internal/faultfs.
	FS faultfs.FS
	// HealthEvery is the journal health-probe cadence (0 → 1s; < 0
	// disables the loop — tests then drive CheckHealth explicitly).
	HealthEvery time.Duration
	// DegradedAfter is how many consecutive journal failures degrade a
	// shard (0 → DefaultDegradedAfter).
	DegradedAfter int
	// FleetPrior enables the fleet meta-prior on every shard: each merge
	// aggregates the union of all shards' full-fidelity measurements into
	// cross-job transfer curves and publishes them fleet-wide, so a new
	// tenant on any shard starts from what every other tenant has paid to
	// learn. Off by default.
	FleetPrior bool
}

// Plane routes tenants across N scheduler shards via a consistent-hash
// ring. Each shard is a full sched.Scheduler — bounded queue, worker
// pool, segmented journal, hot profiling cache — and the plane adds the
// pieces that make them one service: deterministic routing, ID-based
// lookup, aggregate stats, and the shared cache snapshot tier.
type Plane struct {
	ring   *Ring
	caches []*sched.ProfileCache
	traces *obs.Recorder

	// shards is guarded by mu: RestartShard swaps one entry while API
	// traffic keeps flowing to the others. Everything else about a shard
	// slot — its cache, config template, health record — is immutable.
	mu        sync.RWMutex
	shards    []*sched.Scheduler
	sys       *mlcdsys.System
	shardCfgs []sched.Config // rebuild templates for RestartShard

	health        []*shardHealthRec
	degradedAfter int

	// fleetResolve is non-nil when the fleet meta-prior is on: it maps a
	// cache key's job back to its model family when merges rebuild the
	// fleet-wide prior.
	fleetResolve fleetprior.Resolver

	merges        *obs.Counter
	snapEntries   *obs.Gauge
	healthyGauge  []*obs.Gauge
	degradedTotal []*obs.Counter
	readmitTotal  []*obs.Counter
	rerouted      *obs.Counter
	rejected      *obs.Counter

	stop       chan struct{} // closes the merge loop
	done       chan struct{} // merge loop exited
	healthStop chan struct{}
	healthDone chan struct{}
	closeOnce  sync.Once
}

// shard returns slot i's current scheduler; RestartShard may swap it.
func (p *Plane) shard(i int) *sched.Scheduler {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.shards[i]
}

// allShards snapshots the shard slice for iteration.
func (p *Plane) allShards() []*sched.Scheduler {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]*sched.Scheduler, len(p.shards))
	copy(out, p.shards)
	return out
}

// New builds the plane over one MLCD system: the ring, then each shard
// scheduler (replaying its journal directory when configured), then the
// snapshot merge loop. Shard i journals under JournalDir/shard-i and
// mints IDs "si-job-NNNN", so every ID is routable back to its shard.
func New(sys *mlcdsys.System, cfg Config) (*Plane, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 2
	}
	if cfg.Traces == nil {
		cfg.Traces = obs.NewRecorder(0)
	}
	if cfg.Jobs == nil {
		cfg.Jobs = sched.DefaultMenu()
	}
	if cfg.DegradedAfter <= 0 {
		cfg.DegradedAfter = DefaultDegradedAfter
	}
	reg := sys.Metrics()
	p := &Plane{
		ring:          NewRing(cfg.Shards, cfg.Replicas),
		traces:        cfg.Traces,
		sys:           sys,
		degradedAfter: cfg.DegradedAfter,
		merges: reg.Counter("mlcd_shardplane_snapshot_merges_total",
			"Cache snapshot merges published to every shard."),
		snapEntries: reg.Gauge("mlcd_shardplane_snapshot_entries",
			"Measurements in the current shared cache snapshot."),
		rerouted: reg.Counter("mlcd_shardplane_rerouted_submissions_total",
			"New-tenant submissions placed off their home shard because it was degraded."),
		rejected: reg.Counter("mlcd_shardplane_rejected_degraded_total",
			"Submissions refused because the tenant's shard was degraded."),
	}
	reg.Gauge("mlcd_shardplane_shards", "Scheduler shards in the control plane.").
		Set(float64(cfg.Shards))
	if cfg.FleetPrior {
		jobs := make([]workload.Job, 0, len(cfg.Jobs))
		for _, j := range cfg.Jobs {
			jobs = append(jobs, j)
		}
		p.fleetResolve = fleetprior.MenuResolver(jobs)
	}
	for i := 0; i < cfg.Shards; i++ {
		cache := sched.NewProfileCache()
		sc := sched.Config{
			Workers:            cfg.Workers,
			QueueSize:          cfg.QueueSize,
			Jobs:               cfg.Jobs,
			Cache:              cache,
			Traces:             cfg.Traces,
			ProfilerMiddleware: cfg.ProfilerMiddleware,
			IDPrefix:           fmt.Sprintf("s%d-job", i),
			ShardLabel:         strconv.Itoa(i),
			CompactEvery:       cfg.CompactEvery,
			SegmentMaxRecords:  cfg.SegmentMaxRecords,
			FS:                 cfg.FS,
			FleetPrior:         cfg.FleetPrior,
		}
		if cfg.JournalDir != "" {
			sc.JournalDir = filepath.Join(cfg.JournalDir, fmt.Sprintf("shard-%d", i))
		}
		shard, err := sched.New(sys, sc)
		if err != nil {
			for _, prev := range p.shards {
				prev.Close()
			}
			return nil, fmt.Errorf("shardplane: building shard %d: %w", i, err)
		}
		p.shards = append(p.shards, shard)
		p.caches = append(p.caches, cache)
		p.shardCfgs = append(p.shardCfgs, sc)
		p.health = append(p.health, &shardHealthRec{})
		label := obs.L{Key: "shard", Value: strconv.Itoa(i)}
		g := reg.Gauge("mlcd_shardplane_shard_healthy",
			"1 while the shard's journal accepts writes, 0 while degraded.", label)
		g.Set(1)
		p.healthyGauge = append(p.healthyGauge, g)
		p.degradedTotal = append(p.degradedTotal, reg.Counter(
			"mlcd_shardplane_shard_degraded_total",
			"Times this shard was flipped to degraded.", label))
		p.readmitTotal = append(p.readmitTotal, reg.Counter(
			"mlcd_shardplane_shard_readmitted_total",
			"Times this shard recovered and rejoined the ring.", label))
	}
	// Journals replayed: publish what the shards recovered before any
	// submission, so a tenant remapped by the restart (reshard) finds
	// its old shard's measurements in the shared tier immediately.
	p.MergeNow()

	every := cfg.MergeEvery
	if every == 0 {
		every = time.Second
	}
	if every > 0 {
		p.stop = make(chan struct{})
		p.done = make(chan struct{})
		go p.mergeLoop(every)
	}
	healthEvery := cfg.HealthEvery
	if healthEvery == 0 {
		healthEvery = time.Second
	}
	if healthEvery > 0 {
		p.healthStop = make(chan struct{})
		p.healthDone = make(chan struct{})
		go p.healthLoop(healthEvery)
	}
	return p, nil
}

// Ring exposes the tenant→shard mapping.
func (p *Plane) Ring() *Ring { return p.ring }

// Shards returns the shard count.
func (p *Plane) Shards() int { return len(p.shards) }

// Shard returns shard i's scheduler (stats, tests, direct control).
func (p *Plane) Shard(i int) *sched.Scheduler { return p.shard(i) }

// Traces returns the plane-wide timeline recorder.
func (p *Plane) Traces() *obs.Recorder { return p.traces }

// ShardFor reports which shard owns a tenant.
func (p *Plane) ShardFor(tenant string) int { return p.ring.Shard(tenant) }

// shardForID routes a job ID ("s3-job-0042") back to its shard.
func (p *Plane) shardForID(id string) (int, bool) {
	if !strings.HasPrefix(id, "s") {
		return 0, false
	}
	dash := strings.IndexByte(id, '-')
	if dash < 2 {
		return 0, false
	}
	n, err := strconv.Atoi(id[1:dash])
	if err != nil || n < 0 || n >= len(p.shards) {
		return 0, false
	}
	return n, true
}

// Submit routes one submission to its tenant's shard. A degraded home
// shard splits the decision: a tenant the shard already knows is
// refused with ErrShardDegraded (placing it elsewhere would fork its
// history across two journals), while a tenant the shard has never seen
// is placed on the next healthy shard clockwise — new business keeps
// flowing during a partial storage outage.
func (p *Plane) Submit(name, tenant string, req mlcdsys.Requirements) (sched.Job, error) {
	home := p.ring.Shard(tenant)
	if !p.Degraded(home) {
		return p.shard(home).Submit(name, tenant, req)
	}
	if p.shard(home).HasTenant(tenant) {
		p.rejected.Inc()
		return sched.Job{}, ErrShardDegraded
	}
	alt := p.ring.ShardExcluding(tenant, p.Degraded)
	if alt < 0 {
		p.rejected.Inc()
		return sched.Job{}, ErrShardDegraded
	}
	p.rerouted.Inc()
	return p.shard(alt).Submit(name, tenant, req)
}

// Get returns a snapshot of one submission, routed by ID.
func (p *Plane) Get(id string) (sched.Job, bool) {
	i, ok := p.shardForID(id)
	if !ok {
		return sched.Job{}, false
	}
	return p.shard(i).Get(id)
}

// Cancel aborts one submission, routed by ID.
func (p *Plane) Cancel(id string) (sched.Job, error) {
	i, ok := p.shardForID(id)
	if !ok {
		return sched.Job{}, sched.ErrNotFound
	}
	return p.shard(i).Cancel(id)
}

// List returns every shard's submissions, shard-major: shard 0's jobs
// in submission order, then shard 1's, and so on. Within a shard the
// order is the shard's own submission order; there is no global clock
// across shards to interleave by.
func (p *Plane) List(filter sched.Status) []sched.Job {
	var out []sched.Job
	for _, s := range p.allShards() {
		out = append(out, s.List(filter)...)
	}
	return out
}

// Load reports the queue occupancy, capacity, and worker count of the
// shard that owns tenant — the inputs to a Retry-After hint.
func (p *Plane) Load(tenant string) (queued, capacity, workers int) {
	return p.shard(p.ring.Shard(tenant)).Load()
}

// Stats is the plane-wide load picture: per-shard scheduler stats plus
// their aggregate. Cache entry counts may overlap across shards (the
// same measurement promoted into several hot maps), so the aggregate
// counts reuse, not distinct measurements — the snapshot entry count is
// the deduplicated figure.
type Stats struct {
	Shards          int           `json:"shards"`
	SnapshotEntries int           `json:"snapshot_entries"`
	Aggregate       sched.Stats   `json:"aggregate"`
	PerShard        []sched.Stats `json:"per_shard"`
}

// Stats snapshots every shard.
func (p *Plane) Stats() Stats {
	st := Stats{Shards: p.Shards()}
	agg := sched.Stats{JobsByStatus: make(map[sched.Status]int)}
	for _, s := range p.allShards() {
		ss := s.Stats()
		st.PerShard = append(st.PerShard, ss)
		agg.Workers += ss.Workers
		agg.ActiveWorkers += ss.ActiveWorkers
		agg.QueueDepth += ss.QueueDepth
		for k, v := range ss.JobsByStatus {
			agg.JobsByStatus[k] += v
		}
		agg.Cache.Entries += ss.Cache.Entries
		agg.Cache.Hits += ss.Cache.Hits
		agg.Cache.SnapshotHits += ss.Cache.SnapshotHits
		agg.Cache.Misses += ss.Cache.Misses
		agg.Cache.SavedUSD += ss.Cache.SavedUSD
		agg.Cache.SavedProfileHours += ss.Cache.SavedProfileHours
	}
	if total := agg.Cache.Hits + agg.Cache.Misses; total > 0 {
		agg.Cache.HitRate = float64(agg.Cache.Hits) / float64(total)
	}
	if len(st.PerShard) > 0 {
		// Every shard holds the same shared snapshot; shard 0 speaks for all.
		st.SnapshotEntries = st.PerShard[0].Cache.SnapshotEntries
	}
	agg.Cache.SnapshotEntries = st.SnapshotEntries
	st.Aggregate = agg
	return st
}

// MergeNow builds the union of every shard's hot cache and installs it
// as the shared read-only tier on all shards. Shards are merged in
// index order; identical keys hold identical measurements (the journal
// and singleflight guarantee one measurement per key), so order only
// matters for determinism, not correctness.
func (p *Plane) MergeNow() {
	merged := make(map[string]profiler.Result)
	for _, c := range p.caches {
		for k, v := range c.Export() {
			if _, ok := merged[k]; !ok {
				merged[k] = v
			}
		}
	}
	snap := sched.NewCacheSnapshot(merged)
	for _, c := range p.caches {
		c.SetSnapshot(snap)
	}
	if p.fleetResolve != nil {
		// The same merged union, read as transfer evidence: publish the
		// fleet-wide meta-prior so a new tenant on any shard starts from
		// every other tenant's full-fidelity measurements. BuildFromCache
		// sorts internally, so the prior is identical on every shard
		// regardless of map iteration order.
		prior := fleetprior.BuildFromCache(merged, p.fleetResolve)
		for _, s := range p.allShards() {
			s.SetFleetPrior(prior)
		}
	}
	p.merges.Inc()
	p.snapEntries.Set(float64(snap.Len()))
}

// FleetPrior returns the fleet-wide meta-prior the last merge published
// (nil when the feature is off or nothing has been learned yet). Every
// shard holds the same prior; shard 0 speaks for all.
func (p *Plane) FleetPrior() *fleetprior.Prior {
	if p.fleetResolve == nil {
		return nil
	}
	return p.shard(0).FleetPrior()
}

// mergeLoop republishes the shared snapshot on a fixed cadence until
// Close or Shutdown.
func (p *Plane) mergeLoop(every time.Duration) {
	defer close(p.done)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.MergeNow()
		}
	}
}

// stopMerge halts the merge and health loops exactly once.
func (p *Plane) stopMerge() {
	p.closeOnce.Do(func() {
		if p.stop != nil {
			close(p.stop)
			<-p.done
		}
		if p.healthStop != nil {
			close(p.healthStop)
			<-p.healthDone
		}
	})
}

// CompactJournals compacts every shard's segmented journal immediately,
// returning the first error.
func (p *Plane) CompactJournals() error {
	for _, s := range p.allShards() {
		if err := s.CompactJournal(); err != nil {
			return err
		}
	}
	return nil
}

// RestartShard stops shard i with the given deadline and rebuilds it
// over whatever its journal directory holds — the process-level crash
// drill: jobs mid-search when the deadline expires keep their journal
// claim and are re-enqueued by the replay, the shard's hot cache and
// the shared snapshot tier survive in the slot, and the shard rejoins
// traffic the moment the swap lands. Returns how long the shard was
// out of service. On rebuild failure the old (stopped) scheduler stays
// in the slot, the health loop degrades it, and a later RestartShard
// may try again.
func (p *Plane) RestartShard(ctx context.Context, i int) (time.Duration, error) {
	start := time.Now()
	old := p.shard(i)
	_ = old.Shutdown(ctx) // aborted jobs are journal-claimed; replay re-enqueues them
	fresh, err := sched.New(p.sys, p.shardCfgs[i])
	if err != nil {
		return time.Since(start), fmt.Errorf("shardplane: rebuilding shard %d: %w", i, err)
	}
	p.mu.Lock()
	p.shards[i] = fresh
	p.mu.Unlock()
	// Publish what the replay recovered so warm-starts survive the
	// restart immediately instead of waiting for the merge tick.
	p.MergeNow()
	return time.Since(start), nil
}

// Close drains every shard gracefully (queued submissions still run),
// in parallel, then stops the merge loop.
func (p *Plane) Close() {
	var wg sync.WaitGroup
	for _, s := range p.allShards() {
		wg.Add(1)
		go func(s *sched.Scheduler) {
			defer wg.Done()
			s.Close()
		}(s)
	}
	wg.Wait()
	p.stopMerge()
}

// Shutdown stops every shard with the shared deadline, in parallel,
// then stops the merge loop. Returns ctx.Err() if any shard had to
// abort running searches (they keep their journal claim and are
// recovered on restart).
func (p *Plane) Shutdown(ctx context.Context) error {
	shards := p.allShards()
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for i, s := range shards {
		wg.Add(1)
		go func(i int, s *sched.Scheduler) {
			defer wg.Done()
			errs[i] = s.Shutdown(ctx)
		}(i, s)
	}
	wg.Wait()
	p.stopMerge()
	return errors.Join(errs...)
}
