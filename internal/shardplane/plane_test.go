package shardplane

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mlcd/internal/cloud"
	"mlcd/internal/mlcdsys"
	"mlcd/internal/profiler"
	"mlcd/internal/sched"
	"mlcd/internal/workload"
)

func newTestSystem(t *testing.T) *mlcdsys.System {
	t.Helper()
	cat, err := cloud.DefaultCatalog().Subset("c5.4xlarge")
	if err != nil {
		t.Fatal(err)
	}
	return mlcdsys.New(mlcdsys.Config{
		Catalog: cat,
		Limits:  cloud.SpaceLimits{MaxCPUNodes: 40, MaxGPUNodes: 1},
		Seed:    1,
	})
}

// profilerFunc adapts a function to profiler.Profiler.
type profilerFunc func(workload.Job, cloud.Deployment) profiler.Result

func (f profilerFunc) Profile(j workload.Job, d cloud.Deployment) profiler.Result { return f(j, d) }

func awaitStatus(t *testing.T, p *Plane, id string, want sched.Status) sched.Job {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if j, ok := p.Get(id); ok && j.Status == want {
			return j
		}
		time.Sleep(2 * time.Millisecond)
	}
	j, _ := p.Get(id)
	t.Fatalf("job %s never reached %s (now %s, err %q)", id, want, j.Status, j.Err)
	return sched.Job{}
}

// tenantOnShard finds a tenant name r maps to shard want.
func tenantOnShard(t *testing.T, r *Ring, want int) string {
	t.Helper()
	for i := 0; i < 100000; i++ {
		tenant := fmt.Sprintf("tenant-%d", i)
		if r.Shard(tenant) == want {
			return tenant
		}
	}
	t.Fatalf("no tenant maps to shard %d", want)
	return ""
}

func TestPlaneRoutingAndLifecycle(t *testing.T) {
	p, err := New(newTestSystem(t), Config{Shards: 2, Workers: 1, MergeEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	t0 := tenantOnShard(t, p.Ring(), 0)
	t1 := tenantOnShard(t, p.Ring(), 1)

	j0, err := p.Submit("resnet-cifar10", t0, mlcdsys.Requirements{Budget: 100})
	if err != nil {
		t.Fatal(err)
	}
	j1, err := p.Submit("resnet-cifar10", t1, mlcdsys.Requirements{Budget: 100})
	if err != nil {
		t.Fatal(err)
	}
	// IDs carry their shard: a tenant on shard 1 gets s1-job-NNNN, and
	// the ID routes back to the right shard without any global index.
	if !strings.HasPrefix(j0.ID, "s0-job-") || !strings.HasPrefix(j1.ID, "s1-job-") {
		t.Fatalf("IDs = %s / %s, want shard-prefixed", j0.ID, j1.ID)
	}
	d0 := awaitStatus(t, p, j0.ID, sched.StatusDone)
	d1 := awaitStatus(t, p, j1.ID, sched.StatusDone)
	if d0.Report == nil || d1.Report == nil {
		t.Fatalf("missing reports: %+v / %+v", d0.Report, d1.Report)
	}

	if got := len(p.List("")); got != 2 {
		t.Fatalf("List = %d jobs, want 2", got)
	}
	st := p.Stats()
	if st.Shards != 2 || len(st.PerShard) != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Aggregate.JobsByStatus[sched.StatusDone] != 2 {
		t.Fatalf("aggregate done = %d, want 2", st.Aggregate.JobsByStatus[sched.StatusDone])
	}
	if st.PerShard[0].JobsByStatus[sched.StatusDone] != 1 || st.PerShard[1].JobsByStatus[sched.StatusDone] != 1 {
		t.Fatalf("per-shard done counts = %+v", st.PerShard)
	}

	// Unknown and unroutable IDs are not found, not misrouted.
	if _, ok := p.Get("s9-job-0001"); ok {
		t.Fatal("out-of-range shard ID resolved")
	}
	if _, ok := p.Get("job-0001"); ok {
		t.Fatal("unprefixed ID resolved")
	}
	if _, err := p.Cancel("nope"); err != sched.ErrNotFound {
		t.Fatalf("Cancel(nope) = %v, want ErrNotFound", err)
	}
}

// TestPlaneSnapshotMergeSharesMeasurements: a measurement paid for by a
// tenant on shard 0 reaches a shard-1 tenant running the same workload
// through the merged snapshot — the cross-shard half of the paper's
// "profiling dollars are paid once".
func TestPlaneSnapshotMergeSharesMeasurements(t *testing.T) {
	var mu sync.Mutex
	measured := make(map[string]int)
	p, err := New(newTestSystem(t), Config{
		Shards: 2, Workers: 1, MergeEvery: -1,
		ProfilerMiddleware: func(inner profiler.Profiler) profiler.Profiler {
			return profilerFunc(func(j workload.Job, d cloud.Deployment) profiler.Result {
				mu.Lock()
				measured[fmt.Sprintf("%s|%d", d.Type.Name, d.Nodes)]++
				mu.Unlock()
				return inner.Profile(j, d)
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	t0 := tenantOnShard(t, p.Ring(), 0)
	j0, err := p.Submit("resnet-cifar10", t0, mlcdsys.Requirements{Budget: 100})
	if err != nil {
		t.Fatal(err)
	}
	awaitStatus(t, p, j0.ID, sched.StatusDone)
	p.MergeNow()

	t1 := tenantOnShard(t, p.Ring(), 1)
	j1, err := p.Submit("resnet-cifar10", t1, mlcdsys.Requirements{Budget: 100})
	if err != nil {
		t.Fatal(err)
	}
	awaitStatus(t, p, j1.ID, sched.StatusDone)

	mu.Lock()
	defer mu.Unlock()
	for key, n := range measured {
		if n > 1 {
			t.Errorf("deployment %s measured %d times across shards", key, n)
		}
	}
	// The sharing happened through the merged tier: the snapshot holds
	// shard 0's measurements and shard 1's search warm-started from them
	// (via Observations) instead of re-probing — hence the ≤1 counts.
	st := p.Stats()
	if st.SnapshotEntries == 0 {
		t.Errorf("merged snapshot is empty: %+v", st)
	}
}

// TestCrossShardWarmStartSurvivesReshard is the acceptance criterion:
// a plane restarted with MORE shards remaps some tenants; a remapped
// tenant's new shard has neither its journal nor its hot cache, yet the
// tenant's cached observations must still warm-start its next search —
// via journal replay on the old shard plus the merged snapshot.
func TestCrossShardWarmStartSurvivesReshard(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "plane")

	// A tenant that moves when the ring grows 2 → 3 shards (consistent
	// hashing guarantees it moves TO the new shard 2).
	ring2, ring3 := NewRing(2, 0), NewRing(3, 0)
	tenant := ""
	for i := 0; i < 100000; i++ {
		cand := fmt.Sprintf("tenant-%d", i)
		if ring2.Shard(cand) != ring3.Shard(cand) {
			tenant = cand
			break
		}
	}
	if tenant == "" {
		t.Fatal("no tenant remaps when growing 2 → 3 shards")
	}

	a, err := New(newTestSystem(t), Config{Shards: 2, Workers: 1, MergeEvery: -1, JournalDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	j1, err := a.Submit("resnet-cifar10", tenant, mlcdsys.Requirements{Budget: 100})
	if err != nil {
		t.Fatal(err)
	}
	awaitStatus(t, a, j1.ID, sched.StatusDone)
	a.Close()

	journaled, _, err := sched.ReplaySegmented(filepath.Join(dir, fmt.Sprintf("shard-%d", ring2.Shard(tenant))))
	if err != nil {
		t.Fatal(err)
	}
	if len(journaled.Probes) == 0 {
		t.Fatal("first run journaled no probes")
	}
	paidFor := make(map[string]bool)
	for _, p := range journaled.Probes {
		paidFor[fmt.Sprintf("%s|%d", p.Observation.Type, p.Observation.Nodes)] = true
	}

	// Restart with 3 shards over the same journal tree. New() replays
	// every shard directory and publishes the first merged snapshot
	// before accepting submissions.
	var mu sync.Mutex
	remeasured := make(map[string]bool)
	b, err := New(newTestSystem(t), Config{
		Shards: 3, Workers: 1, MergeEvery: -1, JournalDir: dir,
		ProfilerMiddleware: func(inner profiler.Profiler) profiler.Profiler {
			return profilerFunc(func(j workload.Job, d cloud.Deployment) profiler.Result {
				mu.Lock()
				remeasured[fmt.Sprintf("%s|%d", d.Type.Name, d.Nodes)] = true
				mu.Unlock()
				return inner.Profile(j, d)
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	newShard := b.ShardFor(tenant)
	if newShard == ring2.Shard(tenant) {
		t.Fatalf("tenant %q did not move on reshard", tenant)
	}
	j2, err := b.Submit("resnet-cifar10", tenant, mlcdsys.Requirements{Budget: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(j2.ID, fmt.Sprintf("s%d-", newShard)) {
		t.Fatalf("job %s not on the tenant's new shard %d", j2.ID, newShard)
	}
	done := awaitStatus(t, b, j2.ID, sched.StatusDone)
	if done.Report == nil || !done.Report.Satisfied {
		t.Fatalf("post-reshard report = %+v", done.Report)
	}

	mu.Lock()
	defer mu.Unlock()
	for key := range remeasured {
		if paidFor[key] {
			t.Errorf("deployment %s re-measured after reshard — warm start did not survive", key)
		}
	}
	// The path the measurements took: old shard's journal → replay →
	// merged snapshot → new shard's warm start.
	if st := b.Stats(); st.SnapshotEntries < len(paidFor) {
		t.Errorf("snapshot holds %d entries, want at least the %d journaled measurements",
			st.SnapshotEntries, len(paidFor))
	}
}
