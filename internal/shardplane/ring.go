// Package shardplane is MLCD's sharded control plane: the layer that
// lets the multi-tenant scheduler (internal/sched) scale past one
// process-wide queue, journal, and cache. It contributes three pieces:
//
//   - a consistent-hash Ring with virtual nodes mapping tenants onto N
//     scheduler shards deterministically, so the same tenant always
//     lands on the same shard and shard-count churn remaps only a
//     bounded ~1/N fraction of tenants;
//   - a Plane routing submissions across N independent sched.Scheduler
//     shards — each with its own bounded queue, worker pool, segmented
//     journal, and hot profiling cache — behind one API surface;
//   - a snapshot merge loop that periodically publishes the union of
//     every shard's hot cache as an immutable read-only tier installed
//     on all shards, so cross-tenant warm-starts survive resharding.
package shardplane

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultReplicas is the virtual-node count per shard. Load variance on
// a consistent-hash ring falls as 1/√replicas: 512 points per shard
// keeps every shard's share of 1M tenants within 10% of uniform (the
// ring property test pins this) while the ring stays small enough to
// rebuild instantly on churn.
const DefaultReplicas = 512

// Ring is a consistent-hash ring: Shards() shards, each owning
// Replicas() virtual points on a 64-bit circle. Tenant lookups walk
// clockwise to the first point. The ring is immutable after
// construction — churn is modeled by building a ring with a different
// shard count and comparing, which is what the plane does on reshard.
type Ring struct {
	shards   int
	replicas int
	points   []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int
}

// NewRing builds a ring of n shards with r virtual nodes each
// (r <= 0 → DefaultReplicas). n must be >= 1.
func NewRing(n, r int) *Ring {
	if n < 1 {
		panic("shardplane: ring needs at least one shard")
	}
	if r <= 0 {
		r = DefaultReplicas
	}
	ring := &Ring{shards: n, replicas: r, points: make([]ringPoint, 0, n*r)}
	for shard := 0; shard < n; shard++ {
		for v := 0; v < r; v++ {
			h := hash64(fmt.Sprintf("shard-%d#%d", shard, v))
			ring.points = append(ring.points, ringPoint{hash: h, shard: shard})
		}
	}
	// Sort by hash; on the (vanishingly rare) collision the lower shard
	// index wins deterministically, so two builds of the same ring — or
	// of rings sharing shard indices — always agree.
	sort.Slice(ring.points, func(a, b int) bool {
		if ring.points[a].hash != ring.points[b].hash {
			return ring.points[a].hash < ring.points[b].hash
		}
		return ring.points[a].shard < ring.points[b].shard
	})
	return ring
}

// hash64 is FNV-1a followed by a SplitMix64-style avalanche finalizer.
// Both stages are dependency-free and stable across processes and Go
// versions (unlike maphash), which the deterministic tenant→shard
// contract requires; the finalizer matters because raw FNV of short,
// similar keys ("shard-3#17") clusters badly on the ring.
func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Shards returns the shard count.
func (r *Ring) Shards() int { return r.shards }

// Replicas returns the virtual-node count per shard.
func (r *Ring) Replicas() int { return r.replicas }

// Shard maps a tenant to its shard: the first virtual node clockwise
// from the tenant's hash. The empty tenant is a valid key (anonymous
// submissions all share one shard).
func (r *Ring) Shard(tenant string) int {
	h := hash64(tenant)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the top of the circle
	}
	return r.points[i].shard
}

// ShardExcluding walks clockwise from the tenant's hash to the first
// virtual node whose shard excluded() does not veto, preserving the
// consistent-hash property for the healthy subset: tenants NOT owned by
// an excluded shard keep their usual placement, and tenants that are
// rerouted land deterministically (the same degraded set always yields
// the same fallback). Returns -1 when every shard is excluded.
func (r *Ring) ShardExcluding(tenant string, excluded func(shard int) bool) int {
	h := hash64(tenant)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for k := 0; k < len(r.points); k++ {
		p := r.points[(start+k)%len(r.points)]
		if !excluded(p.shard) {
			return p.shard
		}
	}
	return -1
}
