package shardplane

import (
	"fmt"
	"testing"
)

// TestRingDeterministic: the tenant→shard contract is a pure function
// of (tenant, shard count, replicas) — two independently built rings
// must agree on every key.
func TestRingDeterministic(t *testing.T) {
	a, b := NewRing(5, 0), NewRing(5, 0)
	for i := 0; i < 10000; i++ {
		tenant := fmt.Sprintf("tenant-%d", i)
		if a.Shard(tenant) != b.Shard(tenant) {
			t.Fatalf("rings disagree on %q: %d vs %d", tenant, a.Shard(tenant), b.Shard(tenant))
		}
	}
	if got := a.Shard(""); got < 0 || got >= 5 {
		t.Fatalf("empty tenant maps to %d", got)
	}
}

// TestRingDistributionSkew is the satellite property test: across 1M
// synthetic tenants, every shard's share stays within 10% of uniform.
func TestRingDistributionSkew(t *testing.T) {
	const tenants = 1_000_000
	const shards = 8
	r := NewRing(shards, 0)
	counts := make([]int, shards)
	for i := 0; i < tenants; i++ {
		counts[r.Shard(fmt.Sprintf("tenant-%07d", i))]++
	}
	ideal := float64(tenants) / shards
	for s, c := range counts {
		skew := (float64(c) - ideal) / ideal
		if skew < -0.10 || skew > 0.10 {
			t.Errorf("shard %d holds %d tenants (%.1f%% off uniform %0.f); counts=%v",
				s, c, 100*skew, ideal, counts)
		}
	}
}

// TestRingChurnBounded: growing the ring by one shard remaps a bounded
// fraction of keys — close to the ideal 1/(n+1) — and every remapped
// key moves TO the new shard, never between surviving shards. That
// second property is what makes resharding cheap: surviving shards keep
// their tenants (and their journals and hot caches) untouched.
func TestRingChurnBounded(t *testing.T) {
	const tenants = 200_000
	const n = 8
	old, grown := NewRing(n, 0), NewRing(n+1, 0)
	moved := 0
	for i := 0; i < tenants; i++ {
		tenant := fmt.Sprintf("tenant-%07d", i)
		a, b := old.Shard(tenant), grown.Shard(tenant)
		if a == b {
			continue
		}
		moved++
		if b != n {
			t.Fatalf("tenant %q moved shard %d → %d; only moves to the new shard %d are allowed",
				tenant, a, b, n)
		}
	}
	ideal := float64(tenants) / float64(n+1)
	if f := float64(moved); f > 2*ideal {
		t.Errorf("adding one shard remapped %d of %d tenants (ideal ≈ %.0f, bound 2×)",
			moved, tenants, ideal)
	}
	if moved == 0 {
		t.Error("adding a shard remapped nothing — the new shard would sit idle")
	}

	// Shrinking is the mirror image: only the removed shard's tenants
	// move (shard n-1 is the one NewRing(n-1) no longer has).
	shrunk := NewRing(n-1, 0)
	for i := 0; i < tenants; i++ {
		tenant := fmt.Sprintf("tenant-%07d", i)
		a, b := old.Shard(tenant), shrunk.Shard(tenant)
		if a != b && a != n-1 {
			t.Fatalf("tenant %q on surviving shard %d was remapped to %d by a removal elsewhere",
				tenant, a, b)
		}
		if a == n-1 && b == n-1 {
			t.Fatalf("tenant %q still maps to removed shard %d", tenant, n-1)
		}
	}
}
