package sim

import (
	"fmt"
	"hash/fnv"
	"math"

	"mlcd/internal/cloud"
	"mlcd/internal/rngtape"
	"mlcd/internal/workload"
)

// Sub-sampled profiling mode: a probe at fidelity f ∈ (0, 1) observes a
// burst of training too short to reach steady state, so it reads *low*
// — warm-up iterations, unfilled pipelines, and cold caches all weigh
// more in a short window — and the shortfall depends on the workload/
// hardware pair (a transformer on a V100 warms up very differently from
// a CNN on c5 nodes). The simulator models the bias as a deterministic,
// seedable multiplicative gap
//
//	thr_low = thr_full · exp(−γ·(1−f)),  γ = GapBase + GapSpread·u
//
// with u ∈ [0, 1) a hash of (model, instance type, seed). In log space
// the gap is exactly γ·(1−f): linear in (1−f) with a per-(model, type)
// slope — the structure the search's gap regressor (internal/gp) is
// built to learn. Measurement noise also inflates by 1/√f: fewer
// iterations average less of it away.

// defaultGapBase and defaultGapSpread calibrate γ: a zero-length burst
// reads 10–26 % low depending on the (model, type) draw, vanishing
// linearly (in log space) as f → 1.
const (
	defaultGapBase   = 0.10
	defaultGapSpread = 0.16
)

// gapU is the deterministic unit draw fixing how badly short bursts
// underestimate this (model, type) pair on this simulator seed.
func (s *Simulator) gapU(j workload.Job, d cloud.Deployment) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "fidelity-gap|%s|%s|%d", j.Model.Name, d.Type.Name, s.seed)
	return float64(h.Sum64()%(1<<20)) / (1 << 20)
}

// FidelityGap returns the multiplicative bias of a fidelity-f
// measurement: ≤ 1, equal to 1 at full fidelity, deterministic in
// (model, instance type, simulator seed).
func (s *Simulator) FidelityGap(j workload.Job, d cloud.Deployment, f float64) float64 {
	if f <= 0 || f >= 1 {
		return 1
	}
	gamma := s.cfg.GapBase + s.cfg.GapSpread*s.gapU(j, d)
	return math.Exp(-gamma * (1 - f))
}

// ThroughputAt is the noise-free expected reading of a fidelity-f
// probe: ground truth discounted by the fidelity gap. Infeasible
// deployments read zero at every fidelity — OOM is about memory, not
// burst length.
func (s *Simulator) ThroughputAt(j workload.Job, d cloud.Deployment, f float64) float64 {
	return s.Throughput(j, d) * s.FidelityGap(j, d, f)
}

// MeasureThroughputAt returns a noisy fidelity-f observation,
// deterministic in (job, deployment, trial, fidelity). f ≥ 1 (or ≤ 0)
// is exactly MeasureThroughput — same seed stream, same value.
func (s *Simulator) MeasureThroughputAt(j workload.Job, d cloud.Deployment, trial int, f float64) float64 {
	if f <= 0 || f >= 1 {
		return s.MeasureThroughput(j, d, trial)
	}
	biased := s.ThroughputAt(j, d, f)
	if s.cfg.NoiseSigma <= 0 || biased == 0 {
		return biased
	}
	// A distinct stream from the full-fidelity trials: mixing f into the
	// seed keeps a later full probe of the same deployment statistically
	// fresh rather than replaying the burst's noise.
	rng := rngtape.New(s.fidelityTrialSeed(j, d, trial, f))
	sigma := s.cfg.NoiseSigma / math.Sqrt(f)
	noisy := biased * (1 + sigma*rng.NormFloat64())
	if noisy <= 0 {
		noisy = biased * 0.01
	}
	return noisy
}

// fidelityTrialSeed extends trialSeed with the fidelity, so every
// (job, deployment, trial, f) tuple has its own replayable stream.
func (s *Simulator) fidelityTrialSeed(j workload.Job, d cloud.Deployment, trial int, f float64) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%s|%d|%d|%d|f%.6f", j.String(), j.Model.Name, d.Key(), trial, s.seed, j.GlobalBatch, f)
	return int64(h.Sum64())
}
