package sim

import (
	"math"
	"testing"

	"mlcd/internal/cloud"
	"mlcd/internal/workload"
)

func fidDeployment(t *testing.T, typeName string, nodes int) cloud.Deployment {
	t.Helper()
	it, ok := cloud.DefaultCatalog().Lookup(typeName)
	if !ok {
		t.Fatalf("no catalog type %q", typeName)
	}
	return cloud.Deployment{Type: it, Nodes: nodes}
}

// TestFidelityGapDeterministic: the gap is a pure function of (model,
// type, seed, f) — two simulators with the same seed agree exactly,
// and a different seed draws a different gap.
func TestFidelityGapDeterministic(t *testing.T) {
	d := fidDeployment(t, "c5.xlarge", 4)
	j := workload.ResNetCIFAR10
	a, b := New(7), New(7)
	if ga, gb := a.FidelityGap(j, d, 0.3), b.FidelityGap(j, d, 0.3); ga != gb {
		t.Fatalf("same seed, different gaps: %v vs %v", ga, gb)
	}
	if ga, gc := a.FidelityGap(j, d, 0.3), New(8).FidelityGap(j, d, 0.3); ga == gc {
		t.Fatalf("different seeds drew the identical gap %v", ga)
	}
}

// TestFidelityGapBiasedLow: for f ∈ (0,1) the gap strictly discounts
// (< 1), bounded by the configured γ range, and is exactly 1 at the
// full-fidelity edges.
func TestFidelityGapBiasedLow(t *testing.T) {
	d := fidDeployment(t, "p3.2xlarge", 2)
	j := workload.BERTTF
	s := New(21)
	for _, f := range []float64{0.05, 0.1, 0.5, 0.9} {
		g := s.FidelityGap(j, d, f)
		if g >= 1 || g <= 0 {
			t.Fatalf("FidelityGap(f=%v) = %v, want in (0, 1)", f, g)
		}
		// γ ∈ [GapBase, GapBase+GapSpread) bounds the discount.
		lo := math.Exp(-(defaultGapBase + defaultGapSpread) * (1 - f))
		hi := math.Exp(-defaultGapBase * (1 - f))
		if g < lo || g > hi {
			t.Fatalf("FidelityGap(f=%v) = %v outside calibrated band [%v, %v]", f, g, lo, hi)
		}
	}
	for _, f := range []float64{0, 1, 1.5, -0.2} {
		if g := s.FidelityGap(j, d, f); g != 1 {
			t.Fatalf("FidelityGap(f=%v) = %v, want exactly 1", f, g)
		}
	}
}

// TestFidelityGapLogLinear: the log-gap is exactly γ·(1−f) — linear in
// (1−f) — which is the structure gp.GapRegressor assumes. Verified by
// checking log-gap ratios match (1−f) ratios to float precision.
func TestFidelityGapLogLinear(t *testing.T) {
	d := fidDeployment(t, "c5.2xlarge", 3)
	j := workload.AlexNetCIFAR10
	s := New(13)
	gapAt := func(f float64) float64 { return -math.Log(s.FidelityGap(j, d, f)) }
	g50, g25 := gapAt(0.5), gapAt(0.25)
	// (1−0.25)/(1−0.5) = 1.5 exactly.
	if ratio := g25 / g50; math.Abs(ratio-1.5) > 1e-12 {
		t.Fatalf("log-gap ratio %v, want 1.5 (linear in 1−f)", ratio)
	}
	// And the slope sits in the configured γ band.
	gamma := g50 / 0.5
	if gamma < defaultGapBase || gamma >= defaultGapBase+defaultGapSpread {
		t.Fatalf("recovered γ = %v outside [%v, %v)", gamma, defaultGapBase, defaultGapSpread+defaultGapBase)
	}
}

// TestThroughputAtInfeasibleReadsZero: OOM is about memory, not burst
// length — an infeasible deployment reads zero at every fidelity.
func TestThroughputAtInfeasibleReadsZero(t *testing.T) {
	d := fidDeployment(t, "c5.large", 1)
	j := workload.ZeRO8BJob
	s := New(3)
	for _, f := range []float64{0.1, 0.5, 1} {
		if thr := s.ThroughputAt(j, d, f); thr != 0 {
			t.Fatalf("infeasible deployment read %v at f=%v", thr, f)
		}
	}
}

// TestMeasureThroughputAtFullIdentity: at f ≥ 1 (or ≤ 0) the call IS
// MeasureThroughput — same noise stream, bitwise-identical value. This
// is the sim-layer anchor of the end-to-end byte-identity property.
func TestMeasureThroughputAtFullIdentity(t *testing.T) {
	d := fidDeployment(t, "c5.xlarge", 4)
	j := workload.ResNetCIFAR10
	s := New(17)
	for trial := 0; trial < 5; trial++ {
		want := s.MeasureThroughput(j, d, trial)
		for _, f := range []float64{1, 0, 1.25} {
			if got := s.MeasureThroughputAt(j, d, trial, f); got != want {
				t.Fatalf("trial %d f=%v: got %v, want bitwise %v", trial, f, got, want)
			}
		}
	}
}

// TestMeasureThroughputAtNoiseInflation: empirical spread of low-f
// readings around their biased mean grows like 1/√f.
func TestMeasureThroughputAtNoiseInflation(t *testing.T) {
	d := fidDeployment(t, "c5.xlarge", 4)
	j := workload.ResNetCIFAR10
	s := New(29)
	spread := func(f float64) float64 {
		mean := s.ThroughputAt(j, d, f)
		var ss float64
		const n = 400
		for trial := 0; trial < n; trial++ {
			dev := s.MeasureThroughputAt(j, d, trial, f)/mean - 1
			ss += dev * dev
		}
		return math.Sqrt(ss / n)
	}
	s10, s90 := spread(0.10), spread(0.90)
	// σ(0.1)/σ(0.9) should be near √9 = 3; allow generous sampling slop.
	if ratio := s10 / s90; ratio < 2.0 || ratio > 4.5 {
		t.Fatalf("noise inflation ratio %v, want ≈ 3 (1/√f scaling)", ratio)
	}
}

// TestMeasureThroughputAtDistinctStreams: the same trial at different
// fidelities draws from different noise streams, so a later full probe
// of the same deployment is statistically fresh.
func TestMeasureThroughputAtDistinctStreams(t *testing.T) {
	d := fidDeployment(t, "c5.xlarge", 4)
	j := workload.ResNetCIFAR10
	s := New(31)
	a := s.MeasureThroughputAt(j, d, 0, 0.5) / s.ThroughputAt(j, d, 0.5)
	b := s.MeasureThroughputAt(j, d, 0, 0.25) / s.ThroughputAt(j, d, 0.25)
	if a == b {
		t.Fatalf("fidelities 0.5 and 0.25 replayed the same relative noise %v", a)
	}
	// And deterministic per tuple.
	if x, y := s.MeasureThroughputAt(j, d, 2, 0.5), s.MeasureThroughputAt(j, d, 2, 0.5); x != y {
		t.Fatalf("same tuple, different readings: %v vs %v", x, y)
	}
}
