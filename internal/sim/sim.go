// Package sim is the distributed-training performance simulator that
// stands in for the paper's AWS testbed. For any deployment D(m, n) of a
// training job it produces a ground-truth throughput (samples/second) and
// noisy measurements of it, from a compute + communication model:
//
//   - Per-iteration compute: the fixed global batch is sharded across n
//     nodes (strong scaling, as in the paper §V-A), each node processing
//     its shard at the instance's effective FLOP/s for the model.
//   - Per-iteration communication: gradients are exchanged under either a
//     parameter-server topology (bandwidth-bound with incast contention
//     that grows with n) or ring all-reduce (bandwidth term ~2G(n−1)/n·bw
//     plus per-step latency, partially overlapped with compute).
//   - Synchronization stragglers inflate each iteration by (1 + γ·ln n).
//
// These three ingredients reproduce the phenomena the paper's search
// method exploits: concave scale-out speedup with an interior optimum
// (Fig. 3b), non-linear scale-up (Fig. 3a), and model-dependent CPU/GPU
// crossovers (Fig. 1b). The constants below were calibrated against the
// figure shapes, not against absolute testbed numbers — see DESIGN.md.
package sim

import (
	"fmt"
	"hash/fnv"
	"math"
	"time"

	"mlcd/internal/cloud"
	"mlcd/internal/models"
	"mlcd/internal/rngtape"
	"mlcd/internal/workload"
)

// Config tunes the performance model.
type Config struct {
	// PSContention is the per-extra-node incast penalty on parameter-
	// server communication time: t_comm ∝ (1 + PSContention·(n−1)).
	PSContention float64
	// RingStepLatency is the per-ring-step latency.
	RingStepLatency time.Duration
	// StragglerGamma inflates iterations by (1 + γ·ln n).
	StragglerGamma float64
	// IterOverhead is fixed per-iteration framework overhead.
	IterOverhead time.Duration
	// NoiseSigma is the relative std-dev of measurement noise.
	NoiseSigma float64
	// ScaleUpDecay makes big instances slightly less efficient per vCPU
	// (memory-bandwidth saturation): eff ∝ (vCPUs/2)^(−ScaleUpDecay).
	ScaleUpDecay float64
	// MultiGPUExponent: k GPUs deliver k^MultiGPUExponent of one GPU.
	MultiGPUExponent float64
	// GapBase and GapSpread shape the sub-sampled profiling bias (see
	// fidelity.go): a fidelity-f measurement reads low by a factor
	// exp(−(GapBase + GapSpread·u)·(1−f)) with u a deterministic hash of
	// (model, instance type, seed). Zero values disable the bias.
	GapBase   float64
	GapSpread float64
}

// DefaultConfig returns the calibrated constants.
func DefaultConfig() Config {
	return Config{
		PSContention:     0.05,
		RingStepLatency:  3 * time.Millisecond,
		StragglerGamma:   0.025,
		IterOverhead:     25 * time.Millisecond,
		NoiseSigma:       0.03,
		ScaleUpDecay:     0.05,
		MultiGPUExponent: 0.92,
		GapBase:          defaultGapBase,
		GapSpread:        defaultGapSpread,
	}
}

// Simulator produces throughput for (job, deployment) pairs.
type Simulator struct {
	cfg  Config
	seed int64
}

// New returns a simulator with default calibration and the given noise seed.
func New(seed int64) *Simulator {
	return &Simulator{cfg: DefaultConfig(), seed: seed}
}

// NewWithConfig returns a simulator with explicit constants.
func NewWithConfig(cfg Config, seed int64) *Simulator {
	return &Simulator{cfg: cfg, seed: seed}
}

// Config returns the simulator's constants.
func (s *Simulator) Config() Config { return s.cfg }

// platformFactors returns (compute, communication) efficiency multipliers.
func platformFactors(p workload.Platform) (comp, comm float64) {
	switch p {
	case workload.TensorFlow:
		return 1.0, 1.0
	case workload.MXNet:
		// The paper's BERT/MXNet runs (Fig. 17) peak visibly below the
		// TensorFlow ones (Fig. 16).
		return 0.75, 0.95
	case workload.PyTorch:
		return 0.95, 1.0
	default:
		return 1.0, 1.0
	}
}

// accelFactor discounts a model architecture on older accelerators:
// Model.GPUEfficiency is calibrated for V100-class hardware; the K80
// (no tensor cores, 24 GB/s-class memory bandwidth, ancient cuDNN paths)
// does markedly worse on RNNs and transformers.
func accelFactor(a models.Arch, acc cloud.Accelerator) float64 {
	switch acc {
	case cloud.NvidiaK80:
		switch a {
		case models.CNN:
			return 0.90
		case models.RNN:
			return 0.40
		case models.Transformer:
			return 0.30
		}
	case cloud.NvidiaV100:
		switch a {
		case models.CNN:
			return 1.0
		case models.RNN:
			return 0.80
		case models.Transformer:
			return 1.0
		}
	}
	return 1.0
}

// nodeGFLOPS returns the effective per-node compute for the model, in
// GFLOP/s, including model-architecture utilization and instance-size
// efficiency decay.
func (s *Simulator) nodeGFLOPS(m models.Model, it cloud.InstanceType) float64 {
	sizeEff := math.Pow(float64(it.VCPUs)/2, -s.cfg.ScaleUpDecay)
	if it.IsGPU() {
		gpus := math.Pow(float64(it.GPUs), s.cfg.MultiGPUExponent)
		return it.GPUGFLOPS * gpus * m.GPUEfficiency * accelFactor(m.Arch, it.GPUModel) * sizeEff
	}
	return it.CPUGFLOPS * m.CPUEfficiency * sizeEff
}

// MemoryFeasible reports whether deployment d can hold the model's
// training state. Data-parallel training replicates the full state on
// every node; ZeRO-style sharded training divides it across the cluster.
func MemoryFeasible(j workload.Job, d cloud.Deployment) bool {
	need := j.Model.MemoryGiB()
	nodeMem := d.Type.MemGiB
	if d.Type.IsGPU() {
		nodeMem = float64(d.Type.GPUs) * d.Type.GPUMemGiB
	}
	if j.Model.ShardedStates {
		return nodeMem*float64(d.Nodes) >= need
	}
	return nodeMem >= need
}

// IterationTime returns the simulated wall-clock time of one training
// iteration (one global batch) for job j on deployment d.
func (s *Simulator) IterationTime(j workload.Job, d cloud.Deployment) time.Duration {
	if err := j.Validate(); err != nil {
		panic(fmt.Sprintf("sim: invalid job: %v", err))
	}
	if d.Nodes < 1 {
		panic("sim: deployment with zero nodes")
	}
	comp, comm := platformFactors(j.Platform)

	n := float64(d.Nodes)
	perNodeBatch := float64(j.GlobalBatch) / n
	gflops := s.nodeGFLOPS(j.Model, d.Type) * comp
	tComp := perNodeBatch * j.Model.TrainFLOPsPerSample / (gflops * 1e9)

	tComm, overlapped := s.commTime(j, d, comm)

	var tIter float64
	if overlapped {
		// Ring all-reduce overlaps gradient exchange with the backward
		// pass; the slower of the two dominates.
		tIter = math.Max(tComp, tComm) + 0.3*math.Min(tComp, tComm)
	} else {
		tIter = tComp + tComm
	}
	straggler := 1 + s.cfg.StragglerGamma*math.Log(n)
	tIter = tIter*straggler + s.cfg.IterOverhead.Seconds()
	return time.Duration(tIter * float64(time.Second))
}

// ComputeTime returns the per-iteration pure compute time of one node
// (its shard of the global batch at the instance's effective FLOP/s),
// before synchronization effects. Exposed for the event-driven simulator.
func (s *Simulator) ComputeTime(j workload.Job, d cloud.Deployment) time.Duration {
	comp, _ := platformFactors(j.Platform)
	perNodeBatch := float64(j.GlobalBatch) / float64(d.Nodes)
	gflops := s.nodeGFLOPS(j.Model, d.Type) * comp
	return time.Duration(perNodeBatch * j.Model.TrainFLOPsPerSample / (gflops * 1e9) * float64(time.Second))
}

// CommTime returns the per-iteration gradient-exchange time and whether
// the topology overlaps it with compute. Exposed for the event-driven
// simulator.
func (s *Simulator) CommTime(j workload.Job, d cloud.Deployment) (time.Duration, bool) {
	_, comm := platformFactors(j.Platform)
	sec, overlapped := s.commTime(j, d, comm)
	return time.Duration(sec * float64(time.Second)), overlapped
}

// commTime returns the per-iteration gradient-exchange time in seconds
// and whether it overlaps with compute.
func (s *Simulator) commTime(j workload.Job, d cloud.Deployment, commEff float64) (sec float64, overlapped bool) {
	if d.Nodes == 1 {
		return 0, false
	}
	n := float64(d.Nodes)
	gBytes := j.Model.GradientBytes()
	bwBytesPerSec := d.Type.NetworkGbps * 1e9 / 8 * commEff
	switch j.Topology {
	case workload.ParameterServer:
		// Sharded PS co-located with workers: each worker pushes and
		// pulls the full gradient volume per iteration, with incast
		// contention growing with cluster size.
		base := 2 * gBytes / bwBytesPerSec
		contention := 1 + s.cfg.PSContention*(n-1)
		return base * contention, false
	case workload.RingAllReduce:
		// Classic ring: 2(n−1)/n of the gradient volume on the wire,
		// plus 2(n−1) latency-bound ring steps.
		bwTerm := 2 * gBytes * (n - 1) / (n * bwBytesPerSec)
		latTerm := 2 * (n - 1) * s.cfg.RingStepLatency.Seconds()
		return bwTerm + latTerm, true
	default:
		panic(fmt.Sprintf("sim: unknown topology %v", j.Topology))
	}
}

// Throughput returns the ground-truth training speed in samples/second.
// Memory-infeasible deployments (the job OOMs) report zero throughput —
// probing one still costs real profiling time and money, which is part
// of what makes blind exploration expensive.
func (s *Simulator) Throughput(j workload.Job, d cloud.Deployment) float64 {
	if !MemoryFeasible(j, d) {
		return 0
	}
	it := s.IterationTime(j, d).Seconds()
	return float64(j.GlobalBatch) / it
}

// MeasureThroughput returns a noisy throughput observation. The noise is
// deterministic in (job, deployment, trial) so experiments are replayable.
func (s *Simulator) MeasureThroughput(j workload.Job, d cloud.Deployment, trial int) float64 {
	true_ := s.Throughput(j, d)
	if s.cfg.NoiseSigma <= 0 || true_ == 0 {
		return true_
	}
	// A fresh seeded source costs a ~600-word warm-up to produce the one
	// noise draw below; the tape replays the identical stream for free on
	// every repeat of this (job, deployment, trial).
	rng := rngtape.New(s.trialSeed(j, d, trial))
	noisy := true_ * (1 + s.cfg.NoiseSigma*rng.NormFloat64())
	if noisy <= 0 {
		noisy = true_ * 0.01
	}
	return noisy
}

// trialSeed hashes the measurement identity with the simulator seed.
func (s *Simulator) trialSeed(j workload.Job, d cloud.Deployment, trial int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%s|%d|%d|%d", j.String(), j.Model.Name, d.Key(), trial, s.seed, j.GlobalBatch)
	return int64(h.Sum64())
}

// Never is the "cannot finish" sentinel duration for infeasible
// deployments (about 29 000 years; finite so durations stay arithmetic-safe).
const Never = time.Duration(1) << 58

// TrainTime returns the wall-clock time to process the job's total
// samples on deployment d, at ground-truth speed. Infeasible deployments
// return Never.
func (s *Simulator) TrainTime(j workload.Job, d cloud.Deployment) time.Duration {
	thr := s.Throughput(j, d)
	if thr <= 0 {
		return Never
	}
	secs := j.TotalSamples() / thr
	return time.Duration(secs * float64(time.Second))
}

// TrainCost returns the dollars to finish training on d
// (+Inf for infeasible deployments).
func (s *Simulator) TrainCost(j workload.Job, d cloud.Deployment) float64 {
	t := s.TrainTime(j, d)
	if t >= Never {
		return math.Inf(1)
	}
	return d.CostFor(t)
}

// Best scans the whole space for the deployment optimizing the given
// objective (smaller is better) at ground truth. It is the "Opt"
// reference line in the paper's figures.
func (s *Simulator) Best(j workload.Job, space *cloud.Space, objective func(trainTime time.Duration, trainCost float64) float64) (cloud.Deployment, float64) {
	if space.Len() == 0 {
		panic("sim: empty space")
	}
	bestIdx := 0
	bestVal := math.Inf(1)
	for i := 0; i < space.Len(); i++ {
		d := space.At(i)
		v := objective(s.TrainTime(j, d), s.TrainCost(j, d))
		if v < bestVal {
			bestVal = v
			bestIdx = i
		}
	}
	return space.At(bestIdx), bestVal
}

// FastestDeployment returns the time-optimal deployment and its training time.
func (s *Simulator) FastestDeployment(j workload.Job, space *cloud.Space) (cloud.Deployment, time.Duration) {
	d, v := s.Best(j, space, func(t time.Duration, _ float64) float64 { return t.Seconds() })
	return d, time.Duration(v * float64(time.Second))
}

// CheapestDeployment returns the cost-optimal deployment and its training cost.
func (s *Simulator) CheapestDeployment(j workload.Job, space *cloud.Space) (cloud.Deployment, float64) {
	return s.Best(j, space, func(_ time.Duration, c float64) float64 { return c })
}
