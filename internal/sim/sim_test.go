package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"mlcd/internal/cloud"
	"mlcd/internal/workload"
)

var (
	cat   = cloud.DefaultCatalog()
	simtf = New(1)
)

func dep(t *testing.T, name string, n int) cloud.Deployment {
	t.Helper()
	return cloud.NewDeployment(cat.MustLookup(name), n)
}

func TestFig1bOrdering(t *testing.T) {
	// Paper Fig. 1(b): at (roughly) equal hourly cost, Char-RNN trains
	// fastest on 10×c5.4xlarge, slower on 40×c5.xlarge, and slowest on
	// 9×p2.xlarge — the GPU fleet loses despite "GPUs are faster" folklore.
	j := workload.CharRNNText
	t4x := simtf.TrainTime(j, dep(t, "c5.4xlarge", 10))
	tXl := simtf.TrainTime(j, dep(t, "c5.xlarge", 40))
	tP2 := simtf.TrainTime(j, dep(t, "p2.xlarge", 9))
	if !(t4x < tXl && tXl < tP2) {
		t.Fatalf("ordering broken: c5.4xlarge=%v c5.xlarge=%v p2=%v", t4x, tXl, tP2)
	}
	// The paper reports the right deployment is ≈3× faster than the worst.
	ratio := tP2.Hours() / t4x.Hours()
	if ratio < 2 || ratio > 4.5 {
		t.Fatalf("best-to-worst ratio = %.2f, want ≈3×", ratio)
	}
}

func TestFig3bScaleOutConcaveWithInteriorMax(t *testing.T) {
	// Paper Fig. 3(b) and §II-D: scale-out speedup follows a concave
	// curve — rising while compute-bound, then declining once
	// communication dominates.
	j := workload.CharRNNText
	thr := func(n int) float64 { return simtf.Throughput(j, dep(t, "c5.xlarge", n)) }
	if !(thr(10) > thr(1) && thr(30) > thr(10)) {
		t.Fatal("scale-out must speed up at small n")
	}
	if !(thr(100) < thr(40)) {
		t.Fatal("scale-out must decline at large n (communication bound)")
	}
	// Single interior maximum: once the curve turns down it stays down.
	peakSeen := false
	prev := thr(1)
	for n := 2; n <= 100; n++ {
		cur := thr(n)
		if cur < prev*0.999 {
			peakSeen = true
		} else if peakSeen && cur > prev*1.01 {
			t.Fatalf("second rise at n=%d: curve is not unimodal", n)
		}
		prev = cur
	}
	if !peakSeen {
		t.Fatal("no interior peak found in 1..100")
	}
}

func TestFig3aScaleUpNonLinear(t *testing.T) {
	// Paper Fig. 3(a): scale-up speed is non-linear in instance size.
	j := workload.CharRNNText
	small := simtf.Throughput(j, dep(t, "c5.xlarge", 10))
	big := simtf.Throughput(j, dep(t, "c5.18xlarge", 10))
	// 18× the vCPUs must yield clearly less than 18× the speed.
	if big/small >= 18 {
		t.Fatalf("scale-up is implausibly linear: %v / %v", big, small)
	}
	if big <= small {
		t.Fatal("bigger instances must still be faster here")
	}
}

func TestSingleNodeHasNoCommunication(t *testing.T) {
	j := workload.ResNetCIFAR10
	d1 := dep(t, "c5.4xlarge", 1)
	sec, _ := simtf.commTime(j, d1, 1.0)
	if sec != 0 {
		t.Fatalf("single node comm = %v, want 0", sec)
	}
}

func TestRingAllReduceScalesBetterThanPS(t *testing.T) {
	// Ring all-reduce's per-node traffic is bounded; PS suffers incast.
	j := workload.BERTTF
	ps := j
	ps.Topology = workload.ParameterServer
	d := dep(t, "c5n.4xlarge", 30)
	if simtf.Throughput(j, d) <= simtf.Throughput(ps, d) {
		t.Fatal("ring all-reduce must beat PS for a 340M-parameter model at n=30")
	}
}

func TestMXNetSlowerThanTensorFlowForBERT(t *testing.T) {
	// Fig. 17's peak throughput is visibly below Fig. 16's.
	d := dep(t, "c5n.4xlarge", 10)
	if simtf.Throughput(workload.BERTMXNet, d) >= simtf.Throughput(workload.BERTTF, d) {
		t.Fatal("MXNet BERT must be slower than TensorFlow BERT")
	}
}

func TestBERTCrossoverC5nVsP2(t *testing.T) {
	// Figs. 16–17: p2.xlarge plateaus early (1.25 Gbps network strangles
	// ring all-reduce of 1.4 GB gradients); c5n.4xlarge overtakes it
	// within the explored window.
	j := workload.BERTTF
	p2Peak := 0.0
	for n := 1; n <= 20; n++ {
		if v := simtf.Throughput(j, dep(t, "p2.xlarge", n)); v > p2Peak {
			p2Peak = v
		}
	}
	c5nAt20 := simtf.Throughput(j, dep(t, "c5n.4xlarge", 20))
	if c5nAt20 <= p2Peak {
		t.Fatalf("c5n.4xlarge@20 (%v) must beat p2.xlarge peak (%v)", c5nAt20, p2Peak)
	}
}

func TestMemoryFeasibility(t *testing.T) {
	// BERT state (~6.1 GiB) does not fit c5.large (4 GiB), fits c5.xlarge.
	if MemoryFeasible(workload.BERTTF, dep(t, "c5.large", 10)) {
		t.Fatal("BERT must not fit c5.large (replicated states)")
	}
	if !MemoryFeasible(workload.BERTTF, dep(t, "c5.xlarge", 1)) {
		t.Fatal("BERT must fit c5.xlarge")
	}
	// ZeRO-20B shards: 320×1.2 GiB total → 3 p3.16xlarge (128 GiB GPU each) fit.
	if MemoryFeasible(workload.ZeRO20BJob, dep(t, "p3.16xlarge", 2)) {
		t.Fatal("ZeRO-20B must not fit 2×p3.16xlarge")
	}
	if !MemoryFeasible(workload.ZeRO20BJob, dep(t, "p3.16xlarge", 4)) {
		t.Fatal("ZeRO-20B must fit 4×p3.16xlarge")
	}
}

func TestInfeasibleDeploymentSemantics(t *testing.T) {
	d := dep(t, "c5.large", 2)
	j := workload.BERTTF
	if simtf.Throughput(j, d) != 0 {
		t.Fatal("infeasible throughput must be 0")
	}
	if simtf.MeasureThroughput(j, d, 0) != 0 {
		t.Fatal("infeasible measurement must be 0")
	}
	if simtf.TrainTime(j, d) != Never {
		t.Fatal("infeasible train time must be Never")
	}
	if !math.IsInf(simtf.TrainCost(j, d), 1) {
		t.Fatal("infeasible train cost must be +Inf")
	}
}

func TestMeasurementNoiseDeterministicAndBounded(t *testing.T) {
	j := workload.ResNetCIFAR10
	d := dep(t, "c5.4xlarge", 10)
	a := simtf.MeasureThroughput(j, d, 3)
	b := simtf.MeasureThroughput(j, d, 3)
	if a != b {
		t.Fatal("same trial must reproduce the same measurement")
	}
	c := simtf.MeasureThroughput(j, d, 4)
	if a == c {
		t.Fatal("different trials must differ")
	}
	true_ := simtf.Throughput(j, d)
	if math.Abs(a-true_)/true_ > 0.25 {
		t.Fatalf("noise too large: %v vs %v", a, true_)
	}
}

func TestNoiselessConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NoiseSigma = 0
	s := NewWithConfig(cfg, 1)
	j := workload.ResNetCIFAR10
	d := cloud.NewDeployment(cat.MustLookup("c5.4xlarge"), 5)
	if s.MeasureThroughput(j, d, 0) != s.Throughput(j, d) {
		t.Fatal("zero noise must return ground truth")
	}
}

func TestTrainTimeAndCostConsistent(t *testing.T) {
	j := workload.ResNetCIFAR10
	d := dep(t, "c5.4xlarge", 20)
	tt := simtf.TrainTime(j, d)
	want := d.HourlyCost() * tt.Hours()
	if got := simtf.TrainCost(j, d); math.Abs(got-want) > 1e-9 {
		t.Fatalf("TrainCost = %v, want %v", got, want)
	}
	// Throughput × time = total samples.
	samples := simtf.Throughput(j, d) * tt.Seconds()
	if math.Abs(samples-j.TotalSamples())/j.TotalSamples() > 1e-9 {
		t.Fatalf("samples = %v, want %v", samples, j.TotalSamples())
	}
}

func TestBestScansFullSpace(t *testing.T) {
	space := cloud.NewSpace(cat, cloud.SpaceLimits{MaxCPUNodes: 30, MaxGPUNodes: 15})
	j := workload.ResNetCIFAR10
	dFast, tFast := simtf.FastestDeployment(j, space)
	dCheap, cCheap := simtf.CheapestDeployment(j, space)
	// The fastest must be at least as fast as every probe we try.
	for _, d := range []cloud.Deployment{dep(t, "c5.4xlarge", 10), dep(t, "p3.2xlarge", 5)} {
		if simtf.TrainTime(j, d) < tFast {
			t.Fatalf("%s beats claimed fastest %s", d, dFast)
		}
		if simtf.TrainCost(j, d) < cCheap {
			t.Fatalf("%s beats claimed cheapest %s", d, dCheap)
		}
	}
}

func TestBestPanicsOnEmptySpace(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	simtf.Best(workload.ResNetCIFAR10, cloud.NewSpaceFrom(nil),
		func(tt time.Duration, c float64) float64 { return c })
}

func TestIterationTimePanicsOnInvalidJob(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	simtf.IterationTime(workload.Job{}, dep(t, "c5.large", 1))
}

func TestCIFARScaleCNNsPreferCPUPerDollar(t *testing.T) {
	// The premise behind the paper's choice of c5.4xlarge as ResNet's
	// optimal scale-up: CIFAR-scale CNNs utilize GPUs so poorly that
	// CPU instances win per dollar.
	j := workload.ResNetCIFAR10
	cpu := dep(t, "c5.4xlarge", 1)
	gpu := dep(t, "p3.2xlarge", 1)
	cpuPerDollar := simtf.Throughput(j, cpu) / cpu.HourlyCost()
	gpuPerDollar := simtf.Throughput(j, gpu) / gpu.HourlyCost()
	if cpuPerDollar <= gpuPerDollar {
		t.Fatalf("CPU %.1f samples/$ must beat GPU %.1f for CIFAR ResNet", cpuPerDollar, gpuPerDollar)
	}
	// …while large transformers prefer modern GPUs per dollar.
	b := workload.BERTTF
	cpuB := simtf.Throughput(b, cpu) / cpu.HourlyCost()
	gpuB := simtf.Throughput(b, gpu) / gpu.HourlyCost()
	if gpuB <= cpuB {
		t.Fatalf("V100 %.3f samples/$ must beat CPU %.3f for BERT", gpuB, cpuB)
	}
}

// Property: throughput is positive and finite for every feasible
// deployment in the default space.
func TestQuickThroughputPositive(t *testing.T) {
	space := cloud.NewSpace(cat, cloud.DefaultLimits)
	jobs := workload.All()
	f := func(jIdx, dIdx uint16) bool {
		j := jobs[int(jIdx)%len(jobs)]
		d := space.At(int(dIdx) % space.Len())
		thr := simtf.Throughput(j, d)
		if !MemoryFeasible(j, d) {
			return thr == 0
		}
		return thr > 0 && !math.IsInf(thr, 0) && !math.IsNaN(thr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: train cost at n nodes ≥ cost of the work itself — doubling
// nodes never cuts total cost by more than the straggler bound allows
// (sanity: cost monotonicity is not required, but positivity is).
func TestQuickTrainCostPositive(t *testing.T) {
	space := cloud.NewSpace(cat, cloud.SpaceLimits{MaxCPUNodes: 50, MaxGPUNodes: 25})
	f := func(dIdx uint16) bool {
		d := space.At(int(dIdx) % space.Len())
		c := simtf.TrainCost(workload.CharRNNText, d)
		return c > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestComputeAndCommTimeExports(t *testing.T) {
	j := workload.ResNetCIFAR10
	d := dep(t, "c5.4xlarge", 10)
	comp := simtf.ComputeTime(j, d)
	comm, overlapped := simtf.CommTime(j, d)
	if comp <= 0 || comm <= 0 {
		t.Fatalf("component times must be positive: %v, %v", comp, comm)
	}
	if overlapped {
		t.Fatal("PS communication must not be overlapped")
	}
	// Components roughly reassemble the iteration (before stragglers
	// and fixed overhead, both of which only add time).
	iter := simtf.IterationTime(j, d)
	if comp+comm > iter {
		t.Fatalf("components (%v) exceed the full iteration (%v)", comp+comm, iter)
	}
	// Ring topology reports overlap.
	_, ringOverlap := simtf.CommTime(workload.BERTTF, dep(t, "c5n.4xlarge", 10))
	if !ringOverlap {
		t.Fatal("ring all-reduce must report overlap")
	}
	// Strong scaling: per-node compute shrinks with n.
	if simtf.ComputeTime(j, dep(t, "c5.4xlarge", 20)) >= comp {
		t.Fatal("per-node compute must shrink as nodes are added")
	}
}

func TestConfigAccessorAndPlatforms(t *testing.T) {
	if simtf.Config() != DefaultConfig() {
		t.Fatal("Config must return the constants in use")
	}
	// PyTorch sits between TensorFlow and MXNet on compute efficiency.
	d := dep(t, "c5n.4xlarge", 10)
	tf, mx, pt := workload.BERTTF, workload.BERTMXNet, workload.BERTTF
	pt.Platform = workload.PyTorch
	thrTF := simtf.Throughput(tf, d)
	thrMX := simtf.Throughput(mx, d)
	thrPT := simtf.Throughput(pt, d)
	if !(thrMX < thrPT && thrPT <= thrTF) {
		t.Fatalf("platform ordering broken: tf=%v pt=%v mx=%v", thrTF, thrPT, thrMX)
	}
	// Unknown platforms fall back to neutral factors.
	weird := tf
	weird.Platform = workload.Platform(99)
	if simtf.Throughput(weird, d) != thrTF {
		t.Fatal("unknown platform must behave like the neutral baseline")
	}
}
