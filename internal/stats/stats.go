// Package stats provides the probability and summary-statistics helpers
// shared across the repository: the standard-normal distribution (needed
// by the Expected-Improvement acquisition family), streaming moments, and
// quantile/whisker summaries (needed to reproduce the random-search
// distribution study, paper Fig. 12).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// NormPDF returns the standard normal density φ(x).
func NormPDF(x float64) float64 {
	return math.Exp(-0.5*x*x) / math.Sqrt(2*math.Pi)
}

// NormCDF returns the standard normal cumulative Φ(x).
func NormCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormQuantile returns Φ⁻¹(p) for p in (0, 1), using the
// Acklam rational approximation refined with one Halley step.
func NormQuantile(p float64) float64 {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		switch {
		case p == 0:
			return math.Inf(-1)
		case p == 1:
			return math.Inf(1)
		default:
			return math.NaN()
		}
	}
	// Coefficients from Acklam (2003).
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const plow = 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-plow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := NormCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// Welford accumulates mean and variance in a single numerically stable pass.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds x into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance (0 for fewer than 2 points).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Mean returns the arithmetic mean of xs (0 when empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the unbiased sample standard deviation of xs.
func Std(xs []float64) float64 {
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	return w.Std()
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. xs need not be sorted.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of [0,1]", q))
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Whisker is the box-and-whisker summary used by the paper's Fig. 12.
type Whisker struct {
	Min, Q1, Median, Q3, Max float64
	Mean                     float64
	N                        int
}

// Summarize computes the whisker summary of xs.
func Summarize(xs []float64) Whisker {
	if len(xs) == 0 {
		return Whisker{Min: math.NaN(), Q1: math.NaN(), Median: math.NaN(), Q3: math.NaN(), Max: math.NaN(), Mean: math.NaN()}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return Whisker{
		Min:    s[0],
		Q1:     Quantile(s, 0.25),
		Median: Quantile(s, 0.5),
		Q3:     Quantile(s, 0.75),
		Max:    s[len(s)-1],
		Mean:   Mean(s),
		N:      len(s),
	}
}

// String renders the summary in a compact human-readable form.
func (w Whisker) String() string {
	return fmt.Sprintf("n=%d min=%.3g q1=%.3g med=%.3g q3=%.3g max=%.3g mean=%.3g",
		w.N, w.Min, w.Q1, w.Median, w.Q3, w.Max, w.Mean)
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
