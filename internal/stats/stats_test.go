package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormPDF(t *testing.T) {
	if got, want := NormPDF(0), 1/math.Sqrt(2*math.Pi); math.Abs(got-want) > 1e-15 {
		t.Fatalf("NormPDF(0) = %v, want %v", got, want)
	}
	if NormPDF(1) >= NormPDF(0) {
		t.Fatal("pdf must decrease away from 0")
	}
	if math.Abs(NormPDF(3)-NormPDF(-3)) > 1e-16 {
		t.Fatal("pdf must be symmetric")
	}
}

func TestNormCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145707},
		{1.959963984540054, 0.975},
		{-4, 3.167124183311998e-05},
	}
	for _, c := range cases {
		if got := NormCDF(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("NormCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.975, 0.999} {
		x := NormQuantile(p)
		if got := NormCDF(x); math.Abs(got-p) > 1e-9 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestNormQuantileEdges(t *testing.T) {
	if !math.IsInf(NormQuantile(0), -1) {
		t.Fatal("Quantile(0) must be -Inf")
	}
	if !math.IsInf(NormQuantile(1), 1) {
		t.Fatal("Quantile(1) must be +Inf")
	}
	if !math.IsNaN(NormQuantile(-0.1)) || !math.IsNaN(NormQuantile(1.1)) {
		t.Fatal("out-of-range p must give NaN")
	}
}

func TestWelfordMatchesDirect(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != len(xs) {
		t.Fatalf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", w.Mean())
	}
	// Sample variance of the classic dataset: Σ(x-5)² = 32, /7.
	if math.Abs(w.Var()-32.0/7.0) > 1e-12 {
		t.Fatalf("Var = %v, want %v", w.Var(), 32.0/7.0)
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.Std() != 0 {
		t.Fatal("empty accumulator must be all-zero")
	}
	w.Add(3)
	if w.Mean() != 3 || w.Var() != 0 {
		t.Fatal("single observation: mean 3, var 0")
	}
}

func TestMeanStd(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) must be 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v", got)
	}
	if got := Std([]float64{1, 1, 1}); got != 0 {
		t.Fatalf("Std of constants = %v", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 4 {
		t.Fatalf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); got != 2.5 {
		t.Fatalf("median = %v, want 2.5", got)
	}
	if got := Quantile([]float64{7}, 0.3); got != 7 {
		t.Fatalf("singleton quantile = %v", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile must be NaN")
	}
}

func TestQuantilePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Quantile([]float64{1}, 1.5)
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile must not sort its input in place")
	}
}

func TestSummarize(t *testing.T) {
	w := Summarize([]float64{5, 1, 3, 2, 4})
	if w.Min != 1 || w.Max != 5 || w.Median != 3 || w.Mean != 3 || w.N != 5 {
		t.Fatalf("Summarize = %+v", w)
	}
	if w.Q1 != 2 || w.Q3 != 4 {
		t.Fatalf("quartiles = %v, %v", w.Q1, w.Q3)
	}
	if w.String() == "" {
		t.Fatal("String must render")
	}
	empty := Summarize(nil)
	if !math.IsNaN(empty.Min) {
		t.Fatal("empty summary must be NaN-valued")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp wrong")
	}
}

// Property: CDF is monotone and bounded in (0,1) for finite x.
func TestQuickNormCDFMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		ca, cb := NormCDF(lo), NormCDF(hi)
		return ca <= cb && ca >= 0 && cb <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: whisker ordering min ≤ q1 ≤ med ≤ q3 ≤ max and min ≤ mean ≤ max.
func TestQuickWhiskerOrdering(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			// Keep magnitudes moderate so Σx cannot overflow in Mean.
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		w := Summarize(clean)
		return w.Min <= w.Q1 && w.Q1 <= w.Median && w.Median <= w.Q3 &&
			w.Q3 <= w.Max && w.Min <= w.Mean && w.Mean <= w.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
