// Package trace renders search outcomes for humans: step-by-step probe
// tables (the search processes of Figs. 9a/10a/11a/15–17), per-type
// scale-out charts in ASCII, and the profile/train breakdown bars of the
// comparison figures (9b/10b/11b/13/14).
package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"mlcd/internal/search"
)

// StepTable renders one row per probe.
func StepTable(o search.Outcome) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s on %s (%s)\n", o.Searcher, o.Job.String(), o.Scenario)
	fmt.Fprintf(&b, "%4s  %-18s %12s %10s %10s %12s  %s\n",
		"step", "deployment", "samples/s", "probe", "cum-time", "cum-cost", "note")
	for _, s := range o.Steps {
		fmt.Fprintf(&b, "%4d  %-18s %12.1f %10s %10s %12s  %s\n",
			s.Index, s.Deployment.String(), s.Throughput,
			shortDur(s.ProfileTime), shortDur(s.CumProfileTime),
			fmt.Sprintf("$%.2f", s.CumProfileCost), s.Note)
	}
	fmt.Fprintf(&b, "chosen: %s (%.1f samples/s), stop: %s\n", o.Best.String(), o.BestThroughput, o.Stopped)
	return b.String()
}

// SearchProcess renders the Figs. 15–17 view: for each instance type, a
// node-count axis with the step numbers that probed it.
func SearchProcess(o search.Outcome) string {
	byType := map[string][]search.Step{}
	var order []string
	for _, s := range o.Steps {
		name := s.Deployment.Type.Name
		if _, seen := byType[name]; !seen {
			order = append(order, name)
		}
		byType[name] = append(byType[name], s)
	}
	var b strings.Builder
	for _, name := range order {
		steps := byType[name]
		sort.Slice(steps, func(i, j int) bool { return steps[i].Deployment.Nodes < steps[j].Deployment.Nodes })
		fmt.Fprintf(&b, "%s:\n", name)
		for _, s := range steps {
			marker := " "
			if s.Deployment == o.Best {
				marker = "*"
			}
			fmt.Fprintf(&b, "  n=%-4d step %-2d thr=%10.1f %s\n", s.Deployment.Nodes, s.Index, s.Throughput, marker)
		}
	}
	return b.String()
}

// BreakdownRow is one bar of a profile+train comparison figure.
type BreakdownRow struct {
	Name        string
	ProfileTime time.Duration
	TrainTime   time.Duration
	ProfileCost float64
	TrainCost   float64
}

// TotalTime returns profiling + training time.
func (r BreakdownRow) TotalTime() time.Duration { return r.ProfileTime + r.TrainTime }

// TotalCost returns profiling + training dollars.
func (r BreakdownRow) TotalCost() float64 { return r.ProfileCost + r.TrainCost }

// BreakdownTable renders rows with both time and cost breakdowns, plus an
// optional constraint line ("budget $100" / "deadline 20h").
func BreakdownTable(rows []BreakdownRow, constraint string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %10s %10s %10s %12s %12s %12s\n",
		"method", "prof-time", "train-time", "total-time", "prof-cost", "train-cost", "total-cost")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %10s %10s %10s %12s %12s %12s\n",
			r.Name, shortDur(r.ProfileTime), shortDur(r.TrainTime), shortDur(r.TotalTime()),
			fmt.Sprintf("$%.2f", r.ProfileCost), fmt.Sprintf("$%.2f", r.TrainCost),
			fmt.Sprintf("$%.2f", r.TotalCost()))
	}
	if constraint != "" {
		fmt.Fprintf(&b, "constraint: %s\n", constraint)
	}
	return b.String()
}

// BreakdownBars renders the paper's stacked-bar view of a comparison:
// one bar per method, profile segment (█) then train segment (░), scaled
// to the longest total. metric selects "time" or "cost".
func BreakdownBars(rows []BreakdownRow, metric string) string {
	const width = 44
	var max float64
	vals := make([][2]float64, len(rows))
	for i, r := range rows {
		var p, t float64
		if metric == "cost" {
			p, t = r.ProfileCost, r.TrainCost
		} else {
			p, t = r.ProfileTime.Hours(), r.TrainTime.Hours()
		}
		vals[i] = [2]float64{p, t}
		if p+t > max {
			max = p + t
		}
	}
	if max <= 0 {
		max = 1
	}
	var b strings.Builder
	unit := "h"
	if metric == "cost" {
		unit = "$"
	}
	fmt.Fprintf(&b, "%s (█ profile, ░ train):\n", metric)
	for i, r := range rows {
		p := int(vals[i][0] / max * width)
		t := int(vals[i][1] / max * width)
		if vals[i][0] > 0 && p == 0 {
			p = 1
		}
		if vals[i][1] > 0 && t == 0 {
			t = 1
		}
		fmt.Fprintf(&b, "  %-12s %s%s %.2f%s\n",
			r.Name, strings.Repeat("█", p), strings.Repeat("░", t), vals[i][0]+vals[i][1], unit)
	}
	return b.String()
}

// Series is a labelled (x, y) sequence used by curve figures (3, 18, 19).
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// RenderSeries prints one aligned column block per series.
func RenderSeries(title string, ss []Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for _, s := range ss {
		fmt.Fprintf(&b, "  %s:\n", s.Label)
		for i := range s.X {
			fmt.Fprintf(&b, "    x=%-10.4g y=%.6g\n", s.X[i], s.Y[i])
		}
	}
	return b.String()
}

// shortDur renders durations compactly ("1h32m", "12m", "45s").
func shortDur(d time.Duration) string {
	if d == 0 {
		return "0"
	}
	if d >= time.Hour {
		return fmt.Sprintf("%.2fh", d.Hours())
	}
	if d >= time.Minute {
		return fmt.Sprintf("%.1fm", d.Minutes())
	}
	return fmt.Sprintf("%.0fs", d.Seconds())
}
