package trace

import (
	"strings"
	"testing"
	"time"

	"mlcd/internal/cloud"
	"mlcd/internal/search"
	"mlcd/internal/workload"
)

func sampleOutcome() search.Outcome {
	cat := cloud.DefaultCatalog()
	d1 := cloud.NewDeployment(cat.MustLookup("c5.xlarge"), 1)
	d2 := cloud.NewDeployment(cat.MustLookup("c5.4xlarge"), 10)
	return search.Outcome{
		Searcher: "heterbo",
		Job:      workload.CharRNNText,
		Scenario: search.FastestWithBudget,
		Best:     d2, BestThroughput: 1200, Found: true,
		Steps: []search.Step{
			{Index: 1, Deployment: d1, Throughput: 42, ProfileTime: 10 * time.Minute, ProfileCost: 0.03,
				CumProfileTime: 10 * time.Minute, CumProfileCost: 0.03, Note: "init"},
			{Index: 2, Deployment: d2, Throughput: 1200, ProfileTime: 13 * time.Minute, ProfileCost: 1.47,
				CumProfileTime: 23 * time.Minute, CumProfileCost: 1.50, Note: "explore/cost-aware", Acquisition: 3.2},
		},
		ProfileTime: 23 * time.Minute,
		ProfileCost: 1.50,
		Stopped:     "expected improvement below tolerance",
	}
}

func TestStepTableContainsEverything(t *testing.T) {
	s := StepTable(sampleOutcome())
	for _, want := range []string{"heterbo", "charrnn-text", "1×c5.xlarge", "10×c5.4xlarge",
		"init", "explore/cost-aware", "chosen: 10×c5.4xlarge", "expected improvement"} {
		if !strings.Contains(s, want) {
			t.Errorf("StepTable missing %q:\n%s", want, s)
		}
	}
}

func TestSearchProcessGroupsByType(t *testing.T) {
	s := SearchProcess(sampleOutcome())
	if !strings.Contains(s, "c5.xlarge:") || !strings.Contains(s, "c5.4xlarge:") {
		t.Fatalf("SearchProcess missing type sections:\n%s", s)
	}
	// The chosen deployment is starred.
	if !strings.Contains(s, "*") {
		t.Fatalf("chosen deployment must be marked:\n%s", s)
	}
}

func TestBreakdownRowTotals(t *testing.T) {
	r := BreakdownRow{Name: "x", ProfileTime: time.Hour, TrainTime: 2 * time.Hour,
		ProfileCost: 10, TrainCost: 30}
	if r.TotalTime() != 3*time.Hour || r.TotalCost() != 40 {
		t.Fatal("totals wrong")
	}
}

func TestBreakdownTable(t *testing.T) {
	rows := []BreakdownRow{
		{Name: "convbo", ProfileTime: 2 * time.Hour, TrainTime: 3 * time.Hour, ProfileCost: 92, TrainCost: 57},
		{Name: "heterbo", ProfileTime: 30 * time.Minute, TrainTime: 3 * time.Hour, ProfileCost: 21, TrainCost: 51},
	}
	s := BreakdownTable(rows, "budget $100")
	for _, want := range []string{"convbo", "heterbo", "$92.00", "budget $100", "total-cost"} {
		if !strings.Contains(s, want) {
			t.Errorf("BreakdownTable missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(BreakdownTable(rows, ""), "constraint") {
		t.Error("empty constraint must not render a constraint line")
	}
}

func TestRenderSeries(t *testing.T) {
	s := RenderSeries("fig3", []Series{{Label: "scale-out", X: []float64{1, 2}, Y: []float64{10, 19}}})
	for _, want := range []string{"fig3", "scale-out", "x=1", "y=19"} {
		if !strings.Contains(s, want) {
			t.Errorf("RenderSeries missing %q:\n%s", want, s)
		}
	}
}

func TestShortDur(t *testing.T) {
	cases := map[time.Duration]string{
		0:                "0",
		45 * time.Second: "45s",
		90 * time.Second: "1.5m",
		90 * time.Minute: "1.50h",
	}
	for d, want := range cases {
		if got := shortDur(d); got != want {
			t.Errorf("shortDur(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestBreakdownBars(t *testing.T) {
	rows := []BreakdownRow{
		{Name: "convbo", ProfileTime: 2 * time.Hour, TrainTime: 4 * time.Hour, ProfileCost: 90, TrainCost: 60},
		{Name: "heterbo", ProfileTime: 30 * time.Minute, TrainTime: 3 * time.Hour, ProfileCost: 20, TrainCost: 50},
	}
	timeBars := BreakdownBars(rows, "time")
	if !strings.Contains(timeBars, "convbo") || !strings.Contains(timeBars, "█") || !strings.Contains(timeBars, "░") {
		t.Fatalf("time bars malformed:\n%s", timeBars)
	}
	if !strings.Contains(timeBars, "6.00h") {
		t.Fatalf("time bars missing totals:\n%s", timeBars)
	}
	costBars := BreakdownBars(rows, "cost")
	if !strings.Contains(costBars, "150.00$") || !strings.Contains(costBars, "70.00$") {
		t.Fatalf("cost bars missing totals:\n%s", costBars)
	}
	// The longer bar is convbo's: count glyphs.
	lines := strings.Split(strings.TrimSpace(timeBars), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	glyphs := func(s string) int { return strings.Count(s, "█") + strings.Count(s, "░") }
	if glyphs(lines[1]) <= glyphs(lines[2]) {
		t.Fatal("convbo's bar must be longer than heterbo's")
	}
	// Zero rows do not panic.
	if BreakdownBars(nil, "time") == "" {
		t.Fatal("empty render must still produce a header")
	}
	// Tiny-but-nonzero segments still show at least one glyph.
	tiny := []BreakdownRow{
		{Name: "a", ProfileTime: time.Second, TrainTime: 100 * time.Hour},
	}
	if got := BreakdownBars(tiny, "time"); !strings.Contains(got, "█") {
		t.Fatalf("tiny profile segment must still render:\n%s", got)
	}
}
