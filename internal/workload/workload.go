// Package workload defines training jobs: a model + dataset pair with the
// training configuration the paper holds fixed during deployment search
// (global batch size under strong scaling, epochs, ML platform, and
// distribution topology). HeterBO searches deployments only — it never
// touches these knobs, because changing them could change final model
// accuracy (§III-A).
package workload

import (
	"fmt"

	"mlcd/internal/models"
)

// Platform is the ML training framework.
type Platform int

// Platforms the paper evaluates (§V-A).
const (
	TensorFlow Platform = iota
	MXNet
	PyTorch
)

// String names the platform.
func (p Platform) String() string {
	switch p {
	case TensorFlow:
		return "tensorflow"
	case MXNet:
		return "mxnet"
	case PyTorch:
		return "pytorch"
	default:
		return fmt.Sprintf("Platform(%d)", int(p))
	}
}

// Topology is the gradient-distribution scheme.
type Topology int

// Distribution topologies the paper evaluates (§V-A).
const (
	ParameterServer Topology = iota
	RingAllReduce
)

// String names the topology.
func (t Topology) String() string {
	switch t {
	case ParameterServer:
		return "ps"
	case RingAllReduce:
		return "ring-allreduce"
	default:
		return fmt.Sprintf("Topology(%d)", int(t))
	}
}

// Job is a training task to be deployed.
type Job struct {
	Name        string
	Model       models.Model
	Dataset     models.Dataset
	Epochs      float64 // passes over the dataset
	GlobalBatch int     // fixed global batch (strong scaling, §V-A)
	Platform    Platform
	Topology    Topology
}

// TotalSamples returns S, the total training samples to process (Eqs. 5–6).
func (j Job) TotalSamples() float64 {
	return j.Epochs * float64(j.Dataset.Samples)
}

// Validate checks the job is well-formed.
func (j Job) Validate() error {
	if err := j.Model.Validate(); err != nil {
		return err
	}
	switch {
	case j.Name == "":
		return fmt.Errorf("workload: empty job name")
	case j.Dataset.Samples <= 0:
		return fmt.Errorf("workload: %s dataset has no samples", j.Name)
	case j.Epochs <= 0:
		return fmt.Errorf("workload: %s has non-positive epochs", j.Name)
	case j.GlobalBatch <= 0:
		return fmt.Errorf("workload: %s has non-positive batch", j.Name)
	}
	return nil
}

// String renders "resnet-cifar10[tensorflow/ps]".
func (j Job) String() string {
	return fmt.Sprintf("%s[%s/%s]", j.Name, j.Platform, j.Topology)
}

// The evaluation workloads. Epoch counts are sized so optimal training
// lands in the paper's hours-and-tens-of-dollars regime.
var (
	// ResNetCIFAR10 drives the scenario studies (Figs. 9–12, 18).
	ResNetCIFAR10 = Job{
		Name: "resnet-cifar10", Model: models.ResNet, Dataset: models.CIFAR10,
		Epochs: 40, GlobalBatch: 512, Platform: TensorFlow, Topology: ParameterServer,
	}
	// AlexNetCIFAR10 drives the ConvBO step study (Fig. 5) and Fig. 19.
	AlexNetCIFAR10 = Job{
		Name: "alexnet-cifar10", Model: models.AlexNet, Dataset: models.CIFAR10,
		Epochs: 90, GlobalBatch: 512, Platform: TensorFlow, Topology: ParameterServer,
	}
	// InceptionImageNet drives the Paleo comparison (Fig. 13).
	InceptionImageNet = Job{
		Name: "inception-imagenet", Model: models.InceptionV3, Dataset: models.ImageNet,
		Epochs: 2, GlobalBatch: 256, Platform: TensorFlow, Topology: ParameterServer,
	}
	// CharRNNText drives Figs. 1(b), 3, 14, 15.
	CharRNNText = Job{
		Name: "charrnn-text", Model: models.CharRNN, Dataset: models.TextCorpus,
		Epochs: 4, GlobalBatch: 512, Platform: TensorFlow, Topology: ParameterServer,
	}
	// BERTTF / BERTMXNet drive Figs. 16–17 (ring all-reduce).
	BERTTF = Job{
		Name: "bert-wiki", Model: models.BERT, Dataset: models.WikiBooks,
		Epochs: 0.05, GlobalBatch: 256, Platform: TensorFlow, Topology: RingAllReduce,
	}
	BERTMXNet = Job{
		Name: "bert-wiki", Model: models.BERT, Dataset: models.WikiBooks,
		Epochs: 0.05, GlobalBatch: 256, Platform: MXNet, Topology: RingAllReduce,
	}
	// ZeRO-scale jobs for Fig. 19 (simulated, as in the paper §V-E).
	ZeRO8BJob = Job{
		Name: "zero-8b", Model: models.ZeRO8B, Dataset: models.WikiBooks,
		Epochs: 0.01, GlobalBatch: 512, Platform: TensorFlow, Topology: RingAllReduce,
	}
	ZeRO20BJob = Job{
		Name: "zero-20b", Model: models.ZeRO20B, Dataset: models.WikiBooks,
		Epochs: 0.008, GlobalBatch: 512, Platform: TensorFlow, Topology: RingAllReduce,
	}
)

// All returns every predefined workload.
func All() []Job {
	return []Job{
		ResNetCIFAR10, AlexNetCIFAR10, InceptionImageNet, CharRNNText,
		BERTTF, BERTMXNet, ZeRO8BJob, ZeRO20BJob,
	}
}
