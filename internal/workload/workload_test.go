package workload

import (
	"strings"
	"testing"

	"mlcd/internal/models"
)

func TestPredefinedJobsValidate(t *testing.T) {
	for _, j := range All() {
		if err := j.Validate(); err != nil {
			t.Errorf("%s: %v", j.Name, err)
		}
	}
}

func TestTotalSamples(t *testing.T) {
	j := ResNetCIFAR10
	want := 40.0 * 50_000
	if got := j.TotalSamples(); got != want {
		t.Fatalf("TotalSamples = %v, want %v", got, want)
	}
}

func TestValidateRejectsBadJobs(t *testing.T) {
	base := ResNetCIFAR10
	cases := []Job{
		{}, // empty everything
		func() Job { j := base; j.Name = ""; return j }(),
		func() Job { j := base; j.Epochs = 0; return j }(),
		func() Job { j := base; j.GlobalBatch = 0; return j }(),
		func() Job { j := base; j.Dataset = models.Dataset{Name: "x"}; return j }(),
	}
	for i, j := range cases {
		if err := j.Validate(); err == nil {
			t.Errorf("case %d must fail", i)
		}
	}
}

func TestEnumStrings(t *testing.T) {
	if TensorFlow.String() != "tensorflow" || MXNet.String() != "mxnet" || PyTorch.String() != "pytorch" {
		t.Fatal("platform names wrong")
	}
	if Platform(9).String() == "" || Topology(9).String() == "" {
		t.Fatal("unknown enums must render")
	}
	if ParameterServer.String() != "ps" || RingAllReduce.String() != "ring-allreduce" {
		t.Fatal("topology names wrong")
	}
}

func TestJobString(t *testing.T) {
	s := BERTMXNet.String()
	if !strings.Contains(s, "mxnet") || !strings.Contains(s, "ring-allreduce") {
		t.Fatalf("Job.String() = %q", s)
	}
}

func TestBERTJobsUseRingAllReduce(t *testing.T) {
	// §V-A: BERT is trained with ring all-reduce, not PS.
	if BERTTF.Topology != RingAllReduce || BERTMXNet.Topology != RingAllReduce {
		t.Fatal("BERT jobs must use ring all-reduce")
	}
	if BERTTF.Platform == BERTMXNet.Platform {
		t.Fatal("the two BERT jobs must differ in platform")
	}
}

func TestStrongScalingBatchesFixed(t *testing.T) {
	// Strong scaling: the global batch is a job property and must not
	// depend on deployment size (it is what keeps accuracy unaffected).
	for _, j := range All() {
		if j.GlobalBatch < 64 {
			t.Errorf("%s: implausibly small global batch %d", j.Name, j.GlobalBatch)
		}
	}
}
