package mlcd

import (
	"io"
	"net/http"

	"mlcd/internal/baselines"
	"mlcd/internal/bo"
	"mlcd/internal/cloud"
	"mlcd/internal/cloudapi"
	"mlcd/internal/core"
	"mlcd/internal/gp"
	"mlcd/internal/mlcdapi"
	"mlcd/internal/mlcdsys"
	"mlcd/internal/models"
	"mlcd/internal/paleo"
	"mlcd/internal/profiler"
	"mlcd/internal/search"
	"mlcd/internal/sim"
	"mlcd/internal/trace"
	"mlcd/internal/workload"
)

// Cloud substrate types.
type (
	// InstanceType is one scale-up option (an EC2-like machine type).
	InstanceType = cloud.InstanceType
	// Catalog is an immutable set of instance types.
	Catalog = cloud.Catalog
	// Deployment is the paper's D(m, n): n nodes of type m.
	Deployment = cloud.Deployment
	// Space is the discrete deployment search space.
	Space = cloud.Space
	// SpaceLimits bounds per-kind node counts when enumerating a space.
	SpaceLimits = cloud.SpaceLimits
	// Provider is the cloud control-plane interface MLCD drives.
	Provider = cloud.Provider
	// Quota bounds concurrently running nodes.
	Quota = cloud.Quota
)

// Workload types.
type (
	// Arch classifies model architectures (CNN, RNN, Transformer).
	Arch = models.Arch
	// Model describes a trainable network (see the Models variable).
	Model = models.Model
	// Dataset is a training corpus.
	Dataset = models.Dataset
	// Job is a training task to be deployed.
	Job = workload.Job
	// Platform is the ML training framework.
	Platform = workload.Platform
	// Topology is the gradient-distribution scheme.
	Topology = workload.Topology
)

// Search types.
type (
	// Scenario is one of the paper's three deployment goals (§III-A).
	Scenario = search.Scenario
	// Constraints carries the user-specified deadline/budget.
	Constraints = search.Constraints
	// Searcher is a deployment-search strategy.
	Searcher = search.Searcher
	// Outcome is a search's full account: pick, probes, spend.
	Outcome = search.Outcome
	// Step is one profiling decision inside an Outcome.
	Step = search.Step
	// Observation pairs a deployment with measured throughput.
	Observation = search.Observation
	// HeterBOOptions configures the HeterBO searcher, including the
	// ablation switches benchmarked in bench_test.go.
	HeterBOOptions = core.Options
)

// Measurement types.
type (
	// Simulator is the distributed-training performance model standing
	// in for a real testbed.
	Simulator = sim.Simulator
	// SimConfig tunes the simulator's calibration constants.
	SimConfig = sim.Config
	// Profiler measures candidate deployments.
	Profiler = profiler.Profiler
	// ProfileResult is one probe's measurement and cost.
	ProfileResult = profiler.Result
)

// System types.
type (
	// System is a configured MLCD instance.
	System = mlcdsys.System
	// SystemConfig assembles a System.
	SystemConfig = mlcdsys.Config
	// Requirements is what an MLCD user states about a job.
	Requirements = mlcdsys.Requirements
	// Report is Deploy's account of a job's search + training.
	Report = mlcdsys.Report
)

// Rendering helpers.
type (
	// BreakdownRow is a profile/train cost-and-time table row.
	BreakdownRow = trace.BreakdownRow
)

// The paper's three scenarios (§III-A).
const (
	// FastestUnlimited: finish as fast as possible, unlimited budget.
	FastestUnlimited = search.FastestUnlimited
	// CheapestWithDeadline: finish before a deadline at the lowest cost.
	CheapestWithDeadline = search.CheapestWithDeadline
	// FastestWithBudget: finish as fast as possible within a budget.
	FastestWithBudget = search.FastestWithBudget
)

// Training platforms (§V-A).
const (
	TensorFlow = workload.TensorFlow
	MXNet      = workload.MXNet
	PyTorch    = workload.PyTorch
)

// Distribution topologies (§V-A).
const (
	ParameterServer = workload.ParameterServer
	RingAllReduce   = workload.RingAllReduce
)

// Model architecture classes.
const (
	CNNArch         = models.CNN
	RNNArch         = models.RNN
	TransformerArch = models.Transformer
)

// The model zoo (paper §V-A and Fig. 19).
var (
	AlexNet     = models.AlexNet
	ResNet      = models.ResNet
	InceptionV3 = models.InceptionV3
	CharRNN     = models.CharRNN
	BERT        = models.BERT
	ZeRO8B      = models.ZeRO8B
	ZeRO20B     = models.ZeRO20B
)

// Datasets.
var (
	CIFAR10    = models.CIFAR10
	ImageNet   = models.ImageNet
	TextCorpus = models.TextCorpus
	WikiBooks  = models.WikiBooks
)

// The evaluation workloads.
var (
	ResNetCIFAR10     = workload.ResNetCIFAR10
	AlexNetCIFAR10    = workload.AlexNetCIFAR10
	InceptionImageNet = workload.InceptionImageNet
	CharRNNText       = workload.CharRNNText
	BERTTF            = workload.BERTTF
	BERTMXNet         = workload.BERTMXNet
	ZeRO8BJob         = workload.ZeRO8BJob
	ZeRO20BJob        = workload.ZeRO20BJob
)

// DefaultCatalog returns the paper's EC2 instance families with 2019
// us-east-1 on-demand pricing.
func DefaultCatalog() *Catalog { return cloud.DefaultCatalog() }

// NewCatalog builds a catalog from explicit instance types.
func NewCatalog(types []InstanceType) (*Catalog, error) { return cloud.NewCatalog(types) }

// NewSpace enumerates every (type, 1..limit) deployment of a catalog.
func NewSpace(c *Catalog, lim SpaceLimits) *Space { return cloud.NewSpace(c, lim) }

// DefaultLimits is the paper's experiment scale: up to 100 CPU nodes and
// 50 GPU nodes per deployment.
var DefaultLimits = cloud.DefaultLimits

// NewDeployment pairs an instance type with a node count.
func NewDeployment(t InstanceType, nodes int) Deployment { return cloud.NewDeployment(t, nodes) }

// NewHeterBO returns the paper's search method.
func NewHeterBO(opts HeterBOOptions) Searcher { return core.New(opts) }

// NewConvBO returns conventional GP-EI Bayesian optimization.
func NewConvBO(seed int64) Searcher { return baselines.NewConvBO(seed) }

// NewImprovedBO returns the budget-aware BO_imprd baseline (§V-D).
func NewImprovedBO(seed int64) Searcher { return baselines.NewImprovedBO(seed) }

// NewCherryPick returns the CherryPick baseline.
func NewCherryPick(seed int64) Searcher { return baselines.NewCherryPick(seed) }

// NewImprovedCherryPick returns the budget-aware CP_imprd baseline (§V-D).
func NewImprovedCherryPick(seed int64) Searcher { return baselines.NewImprovedCherryPick(seed) }

// NewRandomSearch returns a k-probe random searcher (Fig. 12).
func NewRandomSearch(k int, seed int64) Searcher { return baselines.NewRandom(k, seed) }

// NewExhaustive returns an exhaustive sweep visiting every stride-th
// candidate (Fig. 2).
func NewExhaustive(stride int) Searcher { return baselines.NewExhaustive(stride) }

// NewParallelExhaustive returns an exhaustive sweep that runs up to
// concurrency probe clusters at once: same bill, shorter wall-clock.
func NewParallelExhaustive(stride, concurrency int) Searcher {
	return baselines.NewParallelExhaustive(stride, concurrency)
}

// NewParetoSearch returns the Pareto-optimization baseline from the
// paper's related work (§II): stratified sampling plus a Pareto front
// over (time, cost).
func NewParetoSearch(samplesPerType int) Searcher { return baselines.NewPareto(samplesPerType) }

// NewPaleo returns the analytical-modeling baseline (Fig. 13).
func NewPaleo() Searcher { return paleo.New() }

// NewSimulator returns the testbed performance simulator with default
// calibration and the given noise seed.
func NewSimulator(seed int64) *Simulator { return sim.New(seed) }

// NewSimulatorWithConfig returns a simulator with explicit constants.
func NewSimulatorWithConfig(cfg SimConfig, seed int64) *Simulator {
	return sim.NewWithConfig(cfg, seed)
}

// DefaultSimConfig returns the calibrated simulator constants.
func DefaultSimConfig() SimConfig { return sim.DefaultConfig() }

// NewSimProfiler profiles deployments against a simulator using the
// paper's probe cost model (10 min + 1 min per 3 extra nodes).
func NewSimProfiler(s *Simulator) Profiler { return profiler.NewSimProfiler(s) }

// NewSystem wires catalog, simulator, profiler, provider, and searcher
// into the paper's MLCD pipeline.
func NewSystem(cfg SystemConfig) *System { return mlcdsys.New(cfg) }

// NewCloudServer wraps a provider and catalog in the cloudapi HTTP
// handler (see cmd/cloudd).
func NewCloudServer(p Provider, cat *Catalog) http.Handler { return cloudapi.NewServer(p, cat) }

// MLCDServerConfig tunes the MLaaS service's scheduler: worker-pool
// size, queue bound, submission menu, and crash-safe journal path.
type MLCDServerConfig = mlcdapi.ServerConfig

// NewMLCDServer exposes an MLCD system as the MLaaS job-submission HTTP
// service (see cmd/mlcdd) with a single-worker scheduler. jobs is the
// submission menu (nil = all predefined workloads). Call Close on the
// returned server to drain its workers.
func NewMLCDServer(sys *System, jobs map[string]Job) *mlcdapi.Server {
	return mlcdapi.NewServer(sys, jobs)
}

// NewMLCDServerWithConfig is NewMLCDServer with explicit scheduler
// configuration: concurrent search workers, bounded admission queue,
// and an optional crash-safe journal that lets a restarted service
// resume unfinished jobs without re-profiling.
func NewMLCDServerWithConfig(sys *System, cfg MLCDServerConfig) (*mlcdapi.Server, error) {
	return mlcdapi.NewServerWithConfig(sys, cfg)
}

// NewCloudClient returns a Provider that drives a remote cloudapi control
// plane at the given base URL.
func NewCloudClient(base string, cat *Catalog) Provider { return cloudapi.NewClient(base, cat) }

// SaveObservations persists a search's measured observations as JSON for
// later warm-starting (HeterBOOptions.WarmStart).
func SaveObservations(w io.Writer, jobName string, obs []Observation) error {
	return search.SaveObservations(w, jobName, obs)
}

// LoadObservations reads observations saved by SaveObservations,
// re-resolving instance types against the catalog, and returns the job
// name they were measured for.
func LoadObservations(r io.Reader, cat *Catalog) (jobName string, obs []Observation, err error) {
	return search.LoadObservations(r, cat)
}

// ObservationsFromOutcome extracts persistable observations from a
// finished search.
func ObservationsFromOutcome(o Outcome) []Observation {
	return search.ObservationsFromOutcome(o)
}

// RenderSteps renders a search outcome's probe-by-probe table.
func RenderSteps(o Outcome) string { return trace.StepTable(o) }

// RenderSearchProcess renders the Figs. 15–17 per-type view of a search.
func RenderSearchProcess(o Outcome) string { return trace.SearchProcess(o) }

// RenderBreakdown renders profile/train breakdown rows as a table.
func RenderBreakdown(rows []BreakdownRow, constraint string) string {
	return trace.BreakdownTable(rows, constraint)
}

// Kernel is a Gaussian-process covariance function; see NewMatern52Kernel
// and NewSEKernel.
type Kernel = gp.Kernel

// Acquisition scores search candidates; see NewEI, NewUCB, NewPOI.
type Acquisition = bo.Acquisition

// NewEI returns Expected Improvement (the paper's base acquisition,
// Eq. 4) with optional exploration margin xi.
func NewEI(xi float64) Acquisition { return bo.EI{Xi: xi} }

// NewUCB returns the Upper Confidence Bound acquisition μ + β·σ.
func NewUCB(beta float64) Acquisition { return bo.UCB{Beta: beta} }

// NewPOI returns the Probability of Improvement acquisition.
func NewPOI(xi float64) Acquisition { return bo.POI{Xi: xi} }

// NewMatern52Kernel returns the default surrogate kernel (Matérn ν=5/2
// with ARD lengthscales) over dim-dimensional features.
func NewMatern52Kernel(dim int) Kernel { return gp.NewMatern52(dim) }

// NewSEKernel returns a squared-exponential ARD kernel for the kernel
// ablation.
func NewSEKernel(dim int) Kernel { return gp.NewSE(dim) }

// ProbeDuration returns the paper's profiling-time model for an n-node
// probe (Eq. 7's t(m, n)).
var ProbeDuration = profiler.Duration

// ProbeCost returns Eq. 8's C_profile = P(m)·n·T_profile for a deployment.
var ProbeCost = profiler.Cost
