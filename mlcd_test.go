package mlcd_test

import (
	"testing"
	"time"

	"mlcd"
)

// These tests exercise the public facade the way a downstream user would
// — everything below imports only the mlcd package.

func TestPublicQuickstartFlow(t *testing.T) {
	sys := mlcd.NewSystem(mlcd.SystemConfig{
		Catalog: mustSubset(t, "c5.4xlarge"),
		Limits:  mlcd.SpaceLimits{MaxCPUNodes: 50, MaxGPUNodes: 1},
		Seed:    1,
	})
	rep, err := sys.Deploy(mlcd.ResNetCIFAR10, mlcd.Requirements{Budget: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Satisfied {
		t.Fatalf("budget not satisfied: $%.2f", rep.TotalCost)
	}
	if rep.Outcome.Best.Nodes < 1 {
		t.Fatal("no deployment chosen")
	}
	if s := mlcd.RenderSteps(rep.Outcome); s == "" {
		t.Fatal("rendering empty")
	}
}

func mustSubset(t *testing.T, names ...string) *mlcd.Catalog {
	t.Helper()
	c, err := mlcd.DefaultCatalog().Subset(names...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPublicSearcherConstructors(t *testing.T) {
	names := map[string]mlcd.Searcher{
		"heterbo":    mlcd.NewHeterBO(mlcd.HeterBOOptions{Seed: 1}),
		"convbo":     mlcd.NewConvBO(1),
		"bo_imprd":   mlcd.NewImprovedBO(1),
		"cherrypick": mlcd.NewCherryPick(1),
		"cp_imprd":   mlcd.NewImprovedCherryPick(1),
		"paleo":      mlcd.NewPaleo(),
		"random-5":   mlcd.NewRandomSearch(5, 1),
		"exhaustive": mlcd.NewExhaustive(10),
	}
	for want, s := range names {
		if s.Name() != want {
			t.Errorf("Name() = %q, want %q", s.Name(), want)
		}
	}
}

func TestPublicRawSearchFlow(t *testing.T) {
	simulator := mlcd.NewSimulator(1)
	space := mlcd.NewSpace(mustSubset(t, "c5.xlarge", "c5.4xlarge"), mlcd.SpaceLimits{MaxCPUNodes: 40, MaxGPUNodes: 1})
	out, err := mlcd.NewHeterBO(mlcd.HeterBOOptions{Seed: 2}).Search(
		mlcd.CharRNNText, space, mlcd.CheapestWithDeadline,
		mlcd.Constraints{Deadline: 12 * time.Hour}, mlcd.NewSimProfiler(simulator))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Found {
		t.Fatal("search found nothing")
	}
	total := out.ProfileTime + simulator.TrainTime(mlcd.CharRNNText, out.Best)
	if total > 12*time.Hour {
		t.Fatalf("deadline violated: %v", total)
	}
}

func TestPublicProbeCostModel(t *testing.T) {
	if mlcd.ProbeDuration(1) != 10*time.Minute {
		t.Fatal("probe duration model wrong")
	}
	d := mlcd.NewDeployment(mlcd.DefaultCatalog().MustLookup("c5.xlarge"), 4)
	if mlcd.ProbeCost(d) <= 0 {
		t.Fatal("probe cost must be positive")
	}
}

func TestPublicZooAndWorkloads(t *testing.T) {
	if mlcd.ResNet.Params != 60_300_000 || mlcd.BERT.Params != 340_000_000 {
		t.Fatal("zoo parameter counts wrong")
	}
	for _, j := range []mlcd.Job{mlcd.ResNetCIFAR10, mlcd.BERTTF, mlcd.ZeRO20BJob} {
		if err := j.Validate(); err != nil {
			t.Errorf("%s: %v", j.Name, err)
		}
	}
}

func TestPublicKernels(t *testing.T) {
	for _, k := range []mlcd.Kernel{mlcd.NewMatern52Kernel(5), mlcd.NewSEKernel(5)} {
		x := []float64{1, 2, 3, 4, 5}
		if k.Eval(x, x) <= 0 {
			t.Fatal("kernel self-covariance must be positive")
		}
	}
}
