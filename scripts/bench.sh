#!/bin/sh
# bench.sh — run the benchmark suite and emit a machine-readable record.
#
# Runs the figure/ablation benchmarks (one iteration each: they are whole
# experiment reproductions whose custom metrics, not ns/op, are the
# point), the micro-benchmarks of the core machinery, and the surrogate-
# engine benchmarks added with the fast-surrogate work, and the
# fault-free resilience benchmarks, then converts `go test -bench`
# output into BENCH_PR4.json: ns/op plus every custom metric, alongside
# the frozen pre-optimization and pre-resilience baselines so the
# speedup — and the resilience layer's happy-path overhead — are
# auditable from the file alone.
#
# Usage:
#   scripts/bench.sh                 # writes BENCH_PR4.json at the repo root
#   BENCH_OUT=/tmp/b.json scripts/bench.sh
set -eu

cd "$(dirname "$0")/.."
OUT="${BENCH_OUT:-BENCH_PR4.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

# Pre-optimization reference, measured at the commit before the surrogate
# engine work on the same class of machine (Intel Xeon @ 2.10GHz,
# GOMAXPROCS=1): one full HeterBO scale-out search and one simulator
# throughput evaluation.
BASE_SEARCH_NS=3089809
BASE_SIM_NS=172.8

# Pre-resilience reference, measured at the commit before the
# fault-tolerant execution layer on the same machine (mean of four
# interleaved 400-iteration runs): one full HeterBO scale-out search and
# one fault-free Deploy (search + training) through the system facade.
# The resilience work must stay within 5% of these on the fault-free
# path.
PRERES_SEARCH_NS=961123
PRERES_DEPLOY_NS=957559

echo "bench.sh: figure + ablation suite (1 iteration each)" >&2
go test -run '^$' -bench 'Fig|Ablation|Fidelity' -benchtime 1x . >>"$RAW"

echo "bench.sh: micro-benchmarks" >&2
go test -run '^$' -bench 'BenchmarkHeterBOSearch$' -benchtime 400x -count=3 . >>"$RAW"
go test -run '^$' -bench 'BenchmarkSimulatorThroughput$' -benchtime 1s . >>"$RAW"

# Overhead comparisons run three times and take the best: on a shared
# machine a single sample can swing 15% and masquerade as a regression.
echo "bench.sh: fault-free resilience overhead" >&2
go test -run '^$' -bench 'BenchmarkDeployFaultFree$' -benchtime 400x -count=3 . >>"$RAW"

echo "bench.sh: surrogate engine" >&2
go test -run '^$' -bench 'BenchmarkSurrogateObserve' -benchtime 50x ./internal/bo/ >>"$RAW"
go test -run '^$' -bench 'BenchmarkFitMLE$' -benchtime 20x ./internal/gp/ >>"$RAW"
go test -run '^$' -bench 'BenchmarkNextCandidate$' -benchtime 1000x ./internal/core/ >>"$RAW"

awk -v base_search="$BASE_SEARCH_NS" -v base_sim="$BASE_SIM_NS" \
    -v preres_search="$PRERES_SEARCH_NS" -v preres_deploy="$PRERES_DEPLOY_NS" '
function flushpkg() { pkg = "" }
/^pkg: /   { pkg = $2 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)          # strip the GOMAXPROCS suffix
    iters = $2
    ns = $3                             # value preceding "ns/op"
    metrics = ""
    for (i = 5; i + 1 <= NF; i += 2) {  # trailing "value unit" metric pairs
        if (metrics != "") metrics = metrics ", "
        metrics = metrics sprintf("\"%s\": %s", $(i + 1), $i)
    }
    if (count++) printf ",\n"
    printf "    {\"name\": \"%s\", \"package\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s",
           name, pkg, iters, ns
    if (metrics != "") printf ", \"metrics\": {%s}", metrics
    printf "}"
    if (name == "BenchmarkHeterBOSearch" && (search_ns == "" || ns + 0 < search_ns + 0)) search_ns = ns
    if (name == "BenchmarkSimulatorThroughput") sim_ns = ns
    if (name == "BenchmarkDeployFaultFree" && (deploy_ns == "" || ns + 0 < deploy_ns + 0)) deploy_ns = ns
}
END {
    printf "\n  ],\n"
    printf "  \"baseline\": {\n"
    printf "    \"note\": \"pre-optimization reference, same machine class\",\n"
    printf "    \"heterbo_search_ns_per_op\": %s,\n", base_search
    printf "    \"simulator_throughput_ns_per_op\": %s\n", base_sim
    printf "  }"
    if (search_ns != "") {
        printf ",\n  \"speedup\": {\n"
        printf "    \"heterbo_search_x\": %.2f", base_search / search_ns
        if (sim_ns != "") printf ",\n    \"simulator_throughput_x\": %.2f", base_sim / sim_ns
        printf "\n  }"
    }
    if (search_ns != "" || deploy_ns != "") {
        printf ",\n  \"resilience_overhead\": {\n"
        printf "    \"note\": \"fault-free path vs pre-resilience reference, same machine; target < 5 pct\",\n"
        printf "    \"pre_resilience_search_ns_per_op\": %s,\n", preres_search
        printf "    \"pre_resilience_deploy_ns_per_op\": %s", preres_deploy
        if (search_ns != "") printf ",\n    \"heterbo_search_overhead_pct\": %.2f", (search_ns / preres_search - 1) * 100
        if (deploy_ns != "") printf ",\n    \"deploy_fault_free_overhead_pct\": %.2f", (deploy_ns / preres_deploy - 1) * 100
        printf "\n  }"
    }
    printf "\n}\n"
}
BEGIN { printf "{\n  \"benchmarks\": [\n" }
' "$RAW" >"$OUT"

echo "bench.sh: wrote $OUT" >&2
