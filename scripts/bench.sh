#!/bin/sh
# bench.sh — run the benchmark suite and emit a machine-readable record.
#
# Runs the figure/ablation benchmarks (one iteration each: they are whole
# experiment reproductions whose custom metrics, not ns/op, are the
# point), the micro-benchmarks of the core machinery, the surrogate-
# engine benchmarks, and the fault-free resilience benchmarks, then
# feeds the raw `go test -bench` output through `benchgate fmt`, which
# converts it into BENCH_PR9.json: one row per benchmark — -count
# repeats are aggregated into min and median rather than emitted as
# duplicate rows, which is how BENCH_PR4.json ended up with three
# BenchmarkHeterBOSearch entries — with allocation counters and every
# custom metric preserved, alongside the frozen PR4 references so the
# flattening work's speedup is auditable from the file alone.
#
# `benchgate compare` (see scripts/bench_compare.sh) then gates the
# fresh record against the committed previous one.
#
# Usage:
#   scripts/bench.sh                 # writes BENCH_PR9.json at the repo root
#   BENCH_OUT=/tmp/b.json scripts/bench.sh
set -eu

cd "$(dirname "$0")/.."
OUT="${BENCH_OUT:-BENCH_PR9.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

# Frozen references: the committed BENCH_PR4.json minima (the surrogate-
# engine work, pre-flattening), measured on the same class of machine
# (Intel Xeon @ 2.10GHz, GOMAXPROCS=1) — one full HeterBO scale-out
# search and one acquisition sweep. The speedup section reports ratios
# of these to the fresh minima.
PR4_SEARCH_NS=937047
PR4_NEXTCAND_NS=56693

echo "bench.sh: figure + ablation suite (1 iteration each)" >&2
go test -run '^$' -bench 'Fig|Ablation|Fidelity' -benchtime 1x . >>"$RAW"

# Gated micro-benchmarks run three times; benchgate records min and
# median: on a shared machine a single sample can swing 15% and
# masquerade as a regression.
echo "bench.sh: micro-benchmarks" >&2
go test -run '^$' -bench 'BenchmarkHeterBOSearch$' -benchtime 400x -count=3 . >>"$RAW"
go test -run '^$' -bench 'BenchmarkSimulatorThroughput$' -benchtime 1s . >>"$RAW"

echo "bench.sh: fault-free resilience overhead" >&2
go test -run '^$' -bench 'BenchmarkDeployFaultFree$' -benchtime 400x -count=3 . >>"$RAW"

echo "bench.sh: journal append FS-indirection overhead pair" >&2
go test -run '^$' -bench 'BenchmarkJournalAppend(Direct)?$' -benchtime 20000x -count=3 ./internal/sched/ >>"$RAW"

echo "bench.sh: surrogate engine" >&2
go test -run '^$' -bench 'BenchmarkSurrogateObserve' -benchtime 50x ./internal/bo/ >>"$RAW"
go test -run '^$' -bench 'BenchmarkFitMLE$' -benchtime 20x ./internal/gp/ >>"$RAW"
go test -run '^$' -bench 'BenchmarkNextCandidate$' -benchtime 1000x -count=3 ./internal/core/ >>"$RAW"

go run ./cmd/benchgate fmt -out "$OUT" \
	-ref "BenchmarkHeterBOSearch=$PR4_SEARCH_NS" \
	-ref "BenchmarkNextCandidate=$PR4_NEXTCAND_NS" \
	<"$RAW"

echo "bench.sh: wrote $OUT" >&2
