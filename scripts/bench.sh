#!/bin/sh
# bench.sh — run the benchmark suite and emit a machine-readable record.
#
# Runs the figure/ablation benchmarks (one iteration each: they are whole
# experiment reproductions whose custom metrics, not ns/op, are the
# point), the micro-benchmarks of the core machinery, and the surrogate-
# engine benchmarks added with the fast-surrogate work, then converts
# `go test -bench` output into BENCH_PR3.json: ns/op plus every custom
# metric, alongside the frozen pre-optimization baseline so the speedup
# is auditable from the file alone.
#
# Usage:
#   scripts/bench.sh                 # writes BENCH_PR3.json at the repo root
#   BENCH_OUT=/tmp/b.json scripts/bench.sh
set -eu

cd "$(dirname "$0")/.."
OUT="${BENCH_OUT:-BENCH_PR3.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

# Pre-optimization reference, measured at the commit before the surrogate
# engine work on the same class of machine (Intel Xeon @ 2.10GHz,
# GOMAXPROCS=1): one full HeterBO scale-out search and one simulator
# throughput evaluation.
BASE_SEARCH_NS=3089809
BASE_SIM_NS=172.8

echo "bench.sh: figure + ablation suite (1 iteration each)" >&2
go test -run '^$' -bench 'Fig|Ablation|Fidelity' -benchtime 1x . >>"$RAW"

echo "bench.sh: micro-benchmarks" >&2
go test -run '^$' -bench 'BenchmarkHeterBOSearch$' -benchtime 400x . >>"$RAW"
go test -run '^$' -bench 'BenchmarkSimulatorThroughput$' -benchtime 1s . >>"$RAW"

echo "bench.sh: surrogate engine" >&2
go test -run '^$' -bench 'BenchmarkSurrogateObserve' -benchtime 50x ./internal/bo/ >>"$RAW"
go test -run '^$' -bench 'BenchmarkFitMLE$' -benchtime 20x ./internal/gp/ >>"$RAW"
go test -run '^$' -bench 'BenchmarkNextCandidate$' -benchtime 1000x ./internal/core/ >>"$RAW"

awk -v base_search="$BASE_SEARCH_NS" -v base_sim="$BASE_SIM_NS" '
function flushpkg() { pkg = "" }
/^pkg: /   { pkg = $2 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)          # strip the GOMAXPROCS suffix
    iters = $2
    ns = $3                             # value preceding "ns/op"
    metrics = ""
    for (i = 5; i + 1 <= NF; i += 2) {  # trailing "value unit" metric pairs
        if (metrics != "") metrics = metrics ", "
        metrics = metrics sprintf("\"%s\": %s", $(i + 1), $i)
    }
    if (count++) printf ",\n"
    printf "    {\"name\": \"%s\", \"package\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s",
           name, pkg, iters, ns
    if (metrics != "") printf ", \"metrics\": {%s}", metrics
    printf "}"
    if (name == "BenchmarkHeterBOSearch") search_ns = ns
    if (name == "BenchmarkSimulatorThroughput") sim_ns = ns
}
END {
    printf "\n  ],\n"
    printf "  \"baseline\": {\n"
    printf "    \"note\": \"pre-optimization reference, same machine class\",\n"
    printf "    \"heterbo_search_ns_per_op\": %s,\n", base_search
    printf "    \"simulator_throughput_ns_per_op\": %s\n", base_sim
    printf "  }"
    if (search_ns != "") {
        printf ",\n  \"speedup\": {\n"
        printf "    \"heterbo_search_x\": %.2f", base_search / search_ns
        if (sim_ns != "") printf ",\n    \"simulator_throughput_x\": %.2f", base_sim / sim_ns
        printf "\n  }"
    }
    printf "\n}\n"
}
BEGIN { printf "{\n  \"benchmarks\": [\n" }
' "$RAW" >"$OUT"

echo "bench.sh: wrote $OUT" >&2
