#!/bin/sh
# bench_compare.sh — the benchmark regression gate.
#
# Diffs the fresh benchmark record against the committed previous one
# and fails when BenchmarkHeterBOSearch or BenchmarkNextCandidate — the
# two timings the flattening work is accountable for — slowed by more
# than 10%. Duplicate rows in either record collapse by min before
# comparison (BENCH_PR4.json predates the deduplication and carries
# three BenchmarkHeterBOSearch rows).
#
# Usage:
#   scripts/bench_compare.sh                      # BENCH_PR8.json vs BENCH_PR9.json
#   scripts/bench_compare.sh old.json new.json
set -eu

cd "$(dirname "$0")/.."
OLD="${1:-BENCH_PR8.json}"
NEW="${2:-BENCH_PR9.json}"

go run ./cmd/benchgate compare -old "$OLD" -new "$NEW" \
	-bench BenchmarkHeterBOSearch,BenchmarkNextCandidate \
	-max-regress-pct 10 \
	-pair BenchmarkJournalAppendDirect=BenchmarkJournalAppend \
	-max-overhead-pct 2 -overhead-floor-ns 500
