#!/bin/sh
# cover.sh — coverage gate with a ratcheting floor.
#
# Runs the full test suite with -coverprofile, compares total statement
# coverage against the floor recorded in .coverage-baseline, and fails
# if coverage dropped below it. Run with --update after durably raising
# coverage to ratchet the floor up (it never ratchets down).
#
# Usage:
#   scripts/cover.sh            # gate: fail if total < baseline
#   scripts/cover.sh --update   # gate, then raise the baseline to total
set -eu

cd "$(dirname "$0")/.."
BASELINE_FILE=.coverage-baseline
PROFILE="${COVERPROFILE:-coverage.out}"

go test ./... -coverprofile="$PROFILE" -covermode=atomic >/dev/null

total=$(go tool cover -func="$PROFILE" | awk '/^total:/ {sub(/%/, "", $NF); print $NF}')
if [ -z "$total" ]; then
    echo "cover.sh: could not extract total coverage from $PROFILE" >&2
    exit 2
fi

baseline=$(cat "$BASELINE_FILE")
echo "coverage: ${total}% (baseline floor: ${baseline}%)"

if awk -v t="$total" -v b="$baseline" 'BEGIN { exit !(t < b) }'; then
    echo "cover.sh: FAIL — total coverage ${total}% fell below the recorded floor ${baseline}%" >&2
    echo "cover.sh: add tests for the new code, or justify lowering $BASELINE_FILE in review" >&2
    exit 1
fi

if [ "${1:-}" = "--update" ]; then
    if awk -v t="$total" -v b="$baseline" 'BEGIN { exit !(t > b) }'; then
        echo "$total" > "$BASELINE_FILE"
        echo "cover.sh: ratcheted baseline ${baseline}% → ${total}%"
    else
        echo "cover.sh: baseline unchanged (${baseline}%)"
    fi
fi
